package cachesim

import (
	"testing"
	"testing/quick"

	"gspc/internal/stream"
)

// fifoPolicy is a minimal deterministic policy for exercising the cache
// mechanics: victimizes ways round-robin per set.
type fifoPolicy struct {
	ways int
	next []int
}

func (p *fifoPolicy) Name() string { return "fifo" }
func (p *fifoPolicy) Reset(sets, ways int) {
	p.ways = ways
	p.next = make([]int, sets)
}
func (p *fifoPolicy) Hit(set, way int, a stream.Access)  {}
func (p *fifoPolicy) Fill(set, way int, a stream.Access) {}
func (p *fifoPolicy) Victim(set int, a stream.Access) int {
	w := p.next[set]
	p.next[set] = (w + 1) % p.ways
	return w
}
func (p *fifoPolicy) Evict(set, way int) {}

func smallCache() *Cache {
	return New(Geometry{SizeBytes: 4 * 64 * 2, Ways: 2, BlockSize: 64}, &fifoPolicy{}) // 4 sets, 2 ways
}

func TestGeometry(t *testing.T) {
	g := Geometry{SizeBytes: 8 << 20, Ways: 16, BlockSize: 64}
	if g.Sets() != 8192 {
		t.Errorf("8MB/16w/64B sets = %d, want 8192", g.Sets())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if g.String() != "8MB/16w/64B" {
		t.Errorf("String = %q", g.String())
	}
	bad := []Geometry{
		{SizeBytes: 0, Ways: 16, BlockSize: 64},
		{SizeBytes: 1 << 20, Ways: 0, BlockSize: 64},
		{SizeBytes: 1 << 20, Ways: 16, BlockSize: 0},
		{SizeBytes: 1000, Ways: 16, BlockSize: 64},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v should be invalid", g)
		}
	}
}

func TestGeometrySizeString(t *testing.T) {
	if got := (Geometry{SizeBytes: 768 << 10, Ways: 16, BlockSize: 64}).String(); got != "768KB/16w/64B" {
		t.Errorf("String = %q", got)
	}
}

func TestNewPanicsOnInvalidGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid geometry")
		}
	}()
	New(Geometry{SizeBytes: 100, Ways: 3, BlockSize: 64}, &fifoPolicy{})
}

func TestHitMissBasics(t *testing.T) {
	c := smallCache()
	if c.Access(stream.Access{Addr: 0}) {
		t.Error("first access must miss")
	}
	if !c.Access(stream.Access{Addr: 0}) {
		t.Error("second access must hit")
	}
	if !c.Access(stream.Access{Addr: 63}) {
		t.Error("same-block access must hit")
	}
	if c.Access(stream.Access{Addr: 64}) {
		t.Error("next block must miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestEvictionOnFullSet(t *testing.T) {
	c := smallCache() // 4 sets, 2 ways; blocks mapping to set 0: 0, 4, 8 (x64)
	c.Access(stream.Access{Addr: 0})
	c.Access(stream.Access{Addr: 4 * 64})
	c.Access(stream.Access{Addr: 8 * 64}) // evicts one
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
	if c.Occupancy() != 2 {
		t.Errorf("occupancy = %d, want 2 (set full)", c.Occupancy())
	}
	if _, _, ok := c.Lookup(0); ok {
		t.Error("fifo victim should have evicted block 0")
	}
}

func TestDirtyWriteback(t *testing.T) {
	var wb []stream.Access
	c := smallCache()
	c.Downstream = stream.SinkFunc(func(a stream.Access) {
		if a.Write {
			wb = append(wb, a)
		}
	})
	c.WritebackKind = stream.RT
	c.Access(stream.Access{Addr: 0, Write: true})
	c.Access(stream.Access{Addr: 4 * 64})
	c.Access(stream.Access{Addr: 8 * 64}) // evicts block 0 (fifo), dirty
	if len(wb) != 1 {
		t.Fatalf("writebacks = %d, want 1", len(wb))
	}
	if wb[0].Addr != 0 || wb[0].Kind != stream.RT || !wb[0].Write {
		t.Errorf("writeback = %+v", wb[0])
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("stats writebacks = %d", c.Stats.Writebacks)
	}
}

func TestDownstreamFetchOnMiss(t *testing.T) {
	var reads []stream.Access
	c := smallCache()
	c.Downstream = stream.SinkFunc(func(a stream.Access) {
		if !a.Write {
			reads = append(reads, a)
		}
	})
	c.Access(stream.Access{Addr: 128, Kind: stream.Z, Write: true})
	if len(reads) != 1 || reads[0].Kind != stream.Z || reads[0].Write {
		t.Fatalf("demand fetch = %+v", reads)
	}
	c.Access(stream.Access{Addr: 128}) // hit: no fetch
	if len(reads) != 1 {
		t.Error("hit triggered a downstream fetch")
	}
}

func TestNoFetchOnWrite(t *testing.T) {
	var reads int
	c := smallCache()
	c.NoFetchOnWrite = true
	c.Downstream = stream.SinkFunc(func(a stream.Access) {
		if !a.Write {
			reads++
		}
	})
	c.Access(stream.Access{Addr: 0, Write: true})
	if reads != 0 {
		t.Error("write miss fetched despite NoFetchOnWrite")
	}
	c.Access(stream.Access{Addr: 64})
	if reads != 1 {
		t.Error("read miss should still fetch")
	}
}

func TestBypassKind(t *testing.T) {
	var down []stream.Access
	c := smallCache()
	c.SetBypass(stream.Display, true)
	c.Downstream = stream.SinkFunc(func(a stream.Access) { down = append(down, a) })
	c.Access(stream.Access{Addr: 0, Kind: stream.Display, Write: true})
	c.Access(stream.Access{Addr: 0, Kind: stream.Display, Write: true})
	if c.Stats.Bypasses != 2 || c.Stats.Hits != 0 {
		t.Errorf("stats %+v", c.Stats)
	}
	if c.Occupancy() != 0 {
		t.Error("bypassed access allocated a block")
	}
	if len(down) != 2 || !down[0].Write {
		t.Errorf("bypass downstream = %+v", down)
	}
}

func TestPolicyBypassViaNegativeVictim(t *testing.T) {
	p := &fifoPolicy{}
	c := New(Geometry{SizeBytes: 64 * 2, Ways: 2, BlockSize: 64}, p) // 1 set
	c.Access(stream.Access{Addr: 0})
	c.Access(stream.Access{Addr: 64})
	// Override: make victim refuse.
	refusing := &refusingPolicy{}
	c2 := New(Geometry{SizeBytes: 64 * 2, Ways: 2, BlockSize: 64}, refusing)
	c2.Access(stream.Access{Addr: 0})
	c2.Access(stream.Access{Addr: 64})
	c2.Access(stream.Access{Addr: 128})
	if c2.Stats.Bypasses != 1 {
		t.Errorf("policy bypass not counted: %+v", c2.Stats)
	}
	if _, _, ok := c2.Lookup(128); ok {
		t.Error("refused block was installed")
	}
}

type refusingPolicy struct{ fifoPolicy }

func (p *refusingPolicy) Victim(set int, a stream.Access) int { return -1 }

func TestObserverEventSequence(t *testing.T) {
	var evs []Event
	c := New(Geometry{SizeBytes: 64 * 2, Ways: 2, BlockSize: 64}, &fifoPolicy{})
	c.AddObserver(ObserverFunc(func(ev Event) { evs = append(evs, ev) }))
	c.Access(stream.Access{Addr: 0, Write: true}) // fill
	c.Access(stream.Access{Addr: 0})              // hit
	c.Access(stream.Access{Addr: 64})             // fill
	c.Access(stream.Access{Addr: 128})            // evict + fill
	types := []EventType{EvFill, EvHit, EvFill, EvEvict, EvFill}
	if len(evs) != len(types) {
		t.Fatalf("got %d events, want %d", len(evs), len(types))
	}
	for i, want := range types {
		if evs[i].Type != want {
			t.Errorf("event %d type = %v, want %v", i, evs[i].Type, want)
		}
	}
	// The eviction must report the victim's tag and dirtiness.
	if evs[3].Tag != 0 || !evs[3].Dirty {
		t.Errorf("evict event = %+v", evs[3])
	}
}

func TestDrainWritebacks(t *testing.T) {
	var wb int
	c := smallCache()
	c.Downstream = stream.SinkFunc(func(a stream.Access) {
		if a.Write {
			wb++
		}
	})
	c.Access(stream.Access{Addr: 0, Write: true})
	c.Access(stream.Access{Addr: 64, Write: true})
	c.Access(stream.Access{Addr: 128})
	c.DrainWritebacks()
	if wb != 2 {
		t.Errorf("drained %d writebacks, want 2", wb)
	}
	// Idempotent: blocks are now clean.
	c.DrainWritebacks()
	if wb != 2 {
		t.Error("second drain wrote back again")
	}
	// Blocks remain valid after drain.
	if _, _, ok := c.Lookup(0); !ok {
		t.Error("drain invalidated blocks")
	}
}

func TestReset(t *testing.T) {
	c := smallCache()
	c.Access(stream.Access{Addr: 0})
	c.Reset()
	if c.Stats.Accesses != 0 || c.Occupancy() != 0 {
		t.Error("reset did not clear state")
	}
	if c.Access(stream.Access{Addr: 0}) {
		t.Error("hit after reset")
	}
}

func TestLookupAndBlockAt(t *testing.T) {
	c := smallCache()
	c.Access(stream.Access{Addr: 256, Write: true})
	set, way, ok := c.Lookup(256)
	if !ok {
		t.Fatal("block not found")
	}
	tag, valid, dirty := c.BlockAt(set, way)
	if !valid || !dirty || tag != 256/64 {
		t.Errorf("BlockAt = (%d, %v, %v)", tag, valid, dirty)
	}
}

// Property: for any access sequence, accesses = hits + misses, bypasses
// <= misses, and no set ever holds two blocks with the same tag.
func TestStatsInvariantProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := New(Geometry{SizeBytes: 8 * 64 * 4, Ways: 4, BlockSize: 64}, &fifoPolicy{})
		for i, ad := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(stream.Access{Addr: uint64(ad) * 16, Write: w})
		}
		if c.Stats.Accesses != c.Stats.Hits+c.Stats.Misses {
			return false
		}
		if c.Stats.Bypasses > c.Stats.Misses {
			return false
		}
		// No duplicate tags within a set.
		for s := 0; s < c.Sets(); s++ {
			seen := map[uint64]bool{}
			for w := 0; w < c.Ways(); w++ {
				tag, valid, _ := c.BlockAt(s, w)
				if !valid {
					continue
				}
				if seen[tag] {
					return false
				}
				seen[tag] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy never exceeds capacity and equals the number of
// distinct blocks touched when that number fits.
func TestOccupancyProperty(t *testing.T) {
	f := func(addrs []uint8) bool {
		c := New(Geometry{SizeBytes: 16 * 64 * 4, Ways: 4, BlockSize: 64}, &fifoPolicy{})
		distinct := map[uint64]bool{}
		for _, ad := range addrs {
			a := uint64(ad) * 64
			c.Access(stream.Access{Addr: a})
			distinct[a/64] = true
		}
		if c.Occupancy() > c.Sets()*c.Ways() {
			return false
		}
		// 256 possible blocks over 64-block capacity: occupancy is at
		// most the number of distinct blocks.
		return c.Occupancy() <= len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
