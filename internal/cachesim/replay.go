package cachesim

import (
	"context"

	"gspc/internal/stream"
	"gspc/internal/telemetry"
)

// DefaultCheckStride is the access interval between context polls in
// Replay. Simulated traces run tens of millions of accesses per frame;
// one atomic context check every 8K accesses bounds cancellation latency
// to microseconds while keeping the poll invisible in profiles.
const DefaultCheckStride = 8192

// Replay plays tr through c, polling ctx every stride accesses (stride
// <= 0 selects DefaultCheckStride) so a cancelled or expired context
// stops the simulation promptly instead of after the full trace. It
// returns ctx.Err() when the replay was cut short, nil when the whole
// trace was consumed. This is the cancellation seam for every hot
// cache-simulation loop in the repository: callers that used to write
// `for _, a := range tr { c.Access(a) }` call Replay instead.
func Replay(ctx context.Context, c *Cache, tr []stream.Access, stride int) error {
	if stride <= 0 {
		stride = DefaultCheckStride
	}
	for i := range tr {
		if i%stride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		c.Access(tr[i])
	}
	return nil
}

// ReplaySource is Replay over any positional trace view — most
// importantly the packed stream.Trace that the shared frame-trace cache
// hands out. The packed fast path avoids an interface call per access;
// other Source implementations go through the generic loop. Outcomes
// are identical to Replay on the materialized slice.
func ReplaySource(ctx context.Context, c *Cache, src stream.Source, stride int) error {
	return ReplaySourceRange(ctx, c, src, 0, src.Len(), stride)
}

// ReplaySourceRange replays the half-open record range [lo, hi) of src
// through c — the interval-sampling seam: a warmup window followed by a
// measured window replays the same trace twice with different bounds.
// Seq stays the global trace position, so Belady's OPT (which keys its
// next-use chain on Seq) sees the same lookahead it would in a full
// replay. On a set-sampled cache, accesses to unsampled sets are
// filtered here — one slice index and a compare per skipped record —
// before any policy or counter state is touched.
func ReplaySourceRange(ctx context.Context, c *Cache, src stream.Source, lo, hi, stride int) error {
	if stride <= 0 {
		stride = DefaultCheckStride
	}
	if lo < 0 {
		lo = 0
	}
	if n := src.Len(); hi > n {
		hi = n
	}
	if hi <= lo {
		return nil
	}
	// One span per replay (never per access): on traced runs this splits
	// the raw access-loop time out of the enclosing policy span — e.g.
	// Belady's next-use precomputation vs its replay.
	defer telemetry.StartFrom(ctx, "replay", "cachesim", telemetry.Int("accesses", int64(hi-lo))).End()
	if t, ok := src.(*stream.Trace); ok {
		addrs, meta := t.Records()
		if sm := c.sampleMap; sm != nil {
			shift, idx := c.blockShift, uint64(c.indexSets)
			var skipped int64
			for i := lo; i < hi; i++ {
				if (i-lo)%stride == 0 {
					if err := ctx.Err(); err != nil {
						c.Stats.SampledSkips += skipped
						return err
					}
				}
				if sm[(addrs[i]>>shift)%idx] < 0 {
					skipped++
					continue
				}
				k, w := stream.UnpackMeta(meta[i])
				c.Access(stream.Access{Addr: addrs[i], Seq: int64(i), Kind: k, Write: w})
			}
			c.Stats.SampledSkips += skipped
			return nil
		}
		for i := lo; i < hi; i++ {
			if (i-lo)%stride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			k, w := stream.UnpackMeta(meta[i])
			c.Access(stream.Access{Addr: addrs[i], Seq: int64(i), Kind: k, Write: w})
		}
		return nil
	}
	for i := lo; i < hi; i++ {
		if (i-lo)%stride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		c.Access(src.At(i))
	}
	return nil
}
