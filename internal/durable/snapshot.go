package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Snapshot file format: an 8-byte magic, a u32 format version, then one
// journal-style frame (u32 length, u32 CRC32, JSON payload). The whole
// file is written to a temp name and renamed into place, so a crash
// mid-snapshot leaves the previous snapshot intact; a file that fails
// the magic, version, length, or checksum test is quarantined to
// <name>.corrupt for post-mortem instead of being deleted or trusted.
var snapshotMagic = [8]byte{'G', 'S', 'P', 'C', 'S', 'N', 'A', 'P'}

// snapshotFormatVersion is the on-disk container version. It guards the
// framing only; the engine-level payload schema is versioned separately
// by State.SchemaVersion / harness.ResultSchemaVersion.
const snapshotFormatVersion = 1

// encodeSnapshot renders the state into the on-disk container.
func encodeSnapshot(st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("durable: encode snapshot: %w", err)
	}
	buf := make([]byte, 12+journalHeaderSize+len(payload))
	copy(buf[0:8], snapshotMagic[:])
	binary.BigEndian.PutUint32(buf[8:12], snapshotFormatVersion)
	binary.BigEndian.PutUint32(buf[12:16], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(payload))
	copy(buf[20:], payload)
	return buf, nil
}

// decodeSnapshot parses and verifies a snapshot file.
func decodeSnapshot(data []byte) (*State, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("durable: snapshot too short (%d bytes)", len(data))
	}
	if [8]byte(data[0:8]) != snapshotMagic {
		return nil, fmt.Errorf("durable: snapshot bad magic")
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != snapshotFormatVersion {
		return nil, fmt.Errorf("durable: snapshot format version %d (want %d)", v, snapshotFormatVersion)
	}
	n := int(binary.BigEndian.Uint32(data[12:16]))
	sum := binary.BigEndian.Uint32(data[16:20])
	if len(data)-20 < n {
		return nil, fmt.Errorf("durable: snapshot truncated (%d of %d payload bytes)", len(data)-20, n)
	}
	payload := data[20 : 20+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("durable: snapshot checksum mismatch")
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("durable: snapshot decode: %w", err)
	}
	return &st, nil
}

// writeSnapshot atomically replaces path with the encoded state: write
// to path.tmp, fsync, rename over path, fsync the directory.
func writeSnapshot(fsys FS, dir, path string, st *State) error {
	buf, err := encodeSnapshot(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("durable: publish snapshot: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: fsync snapshot dir: %w", err)
	}
	return nil
}
