package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gspc/internal/faultinject"
	"gspc/internal/harness"
)

// durableStubRun returns a deterministic, schema-stamped result so
// persisted payloads pass the schema check on recovery.
func durableStubRun(ctx context.Context, r Request) (*harness.Result, error) {
	return &harness.Result{
		SchemaVersion: harness.ResultSchemaVersion,
		Experiment:    r.Experiment,
		Title:         "durable stub",
		Scale:         r.Scale,
	}, nil
}

func durableConfig(dir string) Config {
	return Config{
		Workers:      1,
		CacheEntries: -1, // default capacity (0 would disable caching)
		DataDir:      dir,
		Fsync:        true,
		Run:          durableStubRun,
		Logger:       discardLogger(),
		MaxRetries:   -1,
	}
}

// copyDataDir simulates a crash image: the on-disk bytes as they were
// at some instant, with no clean shutdown ever happening to them.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			// Subdirectories (retained traces) are observability side
			// artifacts, not part of the journal/snapshot crash image.
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDurableRestartServesCompletedRun: after a clean shutdown, a new
// engine on the same data dir serves the pre-restart run by its
// original id and answers an identical request from the restored
// cache with the exact original bytes.
func TestDurableRestartServesCompletedRun(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e1.Do(context.Background(), Request{Experiment: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown(context.Background())

	st, ok := e2.JobStatus(rep.RunID)
	if !ok {
		t.Fatalf("run %s lost across restart", rep.RunID)
	}
	if st.Status != StatusDone || string(st.Result) != string(rep.Body) {
		t.Fatalf("recovered status %s result %q", st.Status, st.Result)
	}
	// The identical request is a cache hit with the original run's id.
	rep2, err := e2.Do(context.Background(), Request{Experiment: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Cached || rep2.RunID != rep.RunID || string(rep2.Body) != string(rep.Body) {
		t.Fatalf("restored cache: cached=%v run=%s", rep2.Cached, rep2.RunID)
	}
	m := e2.Metrics()
	if m.Durable == nil || m.Durable.Recovery.RecoveredDone != 1 || m.Durable.Recovery.CacheRestored != 1 {
		t.Fatalf("durable metrics: %+v", m.Durable)
	}
	if !m.Durable.SnapshotLoaded {
		t.Fatalf("expected snapshot restore, got %+v", m.Durable.Stats)
	}
}

// TestDurableCrashRecovery boots from a crash image taken while one
// job was running and another queued: the completed job survives, the
// mid-flight job is failed-retryable, the queued job is resubmitted
// under its original id and completes.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg := durableConfig(dir)
	cfg.Run = func(ctx context.Context, r Request) (*harness.Result, error) {
		if r.Frames == 2 {
			started <- struct{}{} // the job that is "running" when we crash
			<-gate
		}
		return durableStubRun(ctx, r)
	}
	e1, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 completes.
	rep, err := e1.Do(context.Background(), Request{Experiment: "fig12", Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 starts and blocks; job 3 stays queued behind it.
	running, _, err := e1.Submit(Request{Experiment: "fig12", Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := e1.Submit(Request{Experiment: "fig12", Frames: 3})
	if err != nil {
		t.Fatal(err)
	}

	crash := copyDataDir(t, dir) // power fails here
	close(gate)
	if err := e1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(durableConfig(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown(context.Background())

	if st, ok := e2.JobStatus(rep.RunID); !ok || st.Status != StatusDone {
		t.Fatalf("completed run lost: ok=%v st=%+v", ok, st)
	}
	if st, ok := e2.JobStatus(running.ID); !ok || st.Status != StatusFailed {
		t.Fatalf("mid-flight job: ok=%v st=%+v", ok, st)
	} else if st.ErrorCategory != CategoryInternal {
		t.Fatalf("mid-flight category %s", st.ErrorCategory)
	}
	e2.mu.Lock()
	midErr := e2.jobs[running.ID].err
	e2.mu.Unlock()
	var typed *Error
	if !errorsAsError(midErr, &typed) || !typed.Retryable() {
		t.Fatalf("mid-flight error not retryable: %v", midErr)
	}
	// The queued job was resubmitted under its original id and runs to
	// completion on the new engine.
	waitForStatus(t, e2, queued.ID, StatusDone, 5*time.Second)
	m := e2.Metrics()
	if m.Durable.Recovery.ResubmittedQueued != 1 || m.Durable.Recovery.MarkedRetryable != 1 {
		t.Fatalf("recovery: %+v", m.Durable.Recovery)
	}
	// No duplicated ids: a fresh submission must mint an unused id.
	repNew, err := e2.Do(context.Background(), Request{Experiment: "fig12", Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, taken := range []string{rep.RunID, running.ID, queued.ID} {
		if repNew.RunID == taken {
			t.Fatalf("new run reused id %s", taken)
		}
	}
}

func errorsAsError(err error, target **Error) bool {
	for e := err; e != nil; {
		if t, ok := e.(*Error); ok {
			*target = t
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func waitForStatus(t *testing.T, e *Engine, id string, want Status, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, ok := e.JobStatus(id); ok && st.Status == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := e.JobStatus(id)
	t.Fatalf("job %s never reached %s (last: %+v)", id, want, st)
}

// TestDurableServeStaleSurvivesRestart: the last-good table behind
// -serve-stale is restored from disk.
func TestDurableServeStaleSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e1.Do(context.Background(), Request{Experiment: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	cfg := durableConfig(dir)
	cfg.BreakerThreshold = 1
	cfg.ServeStale = true
	cfg.Run = func(ctx context.Context, r Request) (*harness.Result, error) {
		return nil, fmt.Errorf("disk on fire")
	}
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown(context.Background())
	// Different parameters -> cache miss -> real (failing) run, which
	// trips the 1-failure breaker.
	if _, err := e2.Do(context.Background(), Request{Experiment: "fig12", Frames: 5}); err == nil {
		t.Fatal("expected failure")
	}
	// Breaker open + serve-stale: answered with the pre-restart result.
	rep2, err := e2.Do(context.Background(), Request{Experiment: "fig12", Frames: 6})
	if err != nil {
		t.Fatalf("stale serve failed: %v", err)
	}
	if !rep2.Stale || string(rep2.Body) != string(rep.Body) {
		t.Fatalf("stale=%v body match=%v", rep2.Stale, string(rep2.Body) == string(rep.Body))
	}
}

// TestDurableHTTPRestart is the acceptance path end to end over HTTP:
// POST a run, "crash", boot a second server on the same files, GET
// the pre-crash id.
func TestDurableHTTPRestart(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(NewServer(e1))
	resp, err := srv1.Client().Post(srv1.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"experiment":"fig12"}`))
	if err != nil {
		t.Fatal(err)
	}
	runID := resp.Header.Get("X-Gspc-Run")
	var want harness.Result
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	crash := copyDataDir(t, dir) // crash image before any clean shutdown
	srv1.Close()
	if err := e1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(durableConfig(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown(context.Background())
	srv2 := httptest.NewServer(NewServer(e2))
	defer srv2.Close()
	resp2, err := srv2.Client().Get(srv2.URL + "/v1/runs/" + runID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("GET recovered run: %d", resp2.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone || st.ID != runID {
		t.Fatalf("recovered: %+v", st)
	}
	var got harness.Result
	if err := json.Unmarshal(st.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != want.Experiment || got.Title != want.Title {
		t.Fatalf("result drifted: %+v vs %+v", got, want)
	}
}

// TestDurableSchemaMismatchDropped: persisted results from another
// schema version are rejected on recovery, not half-trusted.
func TestDurableSchemaMismatchDropped(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Run = func(ctx context.Context, r Request) (*harness.Result, error) {
		// A result that claims a foreign schema version.
		return &harness.Result{SchemaVersion: 99, Experiment: r.Experiment, Title: "future"}, nil
	}
	e1, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e1.Do(context.Background(), Request{Experiment: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown(context.Background())
	st, ok := e2.JobStatus(rep.RunID)
	if !ok {
		t.Fatal("job record itself should survive")
	}
	if st.Status != StatusFailed {
		t.Fatalf("mismatched-schema result served: %+v", st)
	}
	if e2.Metrics().Durable.Recovery.SchemaDropped == 0 {
		t.Fatal("SchemaDropped not counted")
	}
}

// TestChaosEngineCrashAtEveryOffset drives a single-worker engine
// whose disk dies after n bytes, for every n up to a full healthy run,
// then reboots on the surviving bytes with a healthy disk. Whatever
// the crash point, the reboot must succeed and recovered runs must be
// internally consistent: a run recovered as done carries its exact
// original bytes, and (with one worker completing runs in order) the
// set of recovered-done runs is a prefix of the completed runs.
func TestChaosEngineCrashAtEveryOffset(t *testing.T) {
	const runs = 3
	drive := func(dir string, ffs *faultinject.FaultFS) []*Reply {
		cfg := durableConfig(dir)
		cfg.DurableFS = ffs
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("engine refused to start on faulty disk: %v", err)
		}
		var replies []*Reply
		for i := 1; i <= runs; i++ {
			rep, err := e.Do(context.Background(), Request{Experiment: "fig12", Frames: i})
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
			replies = append(replies, rep)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(ctx)
		return replies
	}

	// Healthy pass: learn the total bytes written and the reference
	// replies (deterministic: no timestamps in the journal).
	probe := faultinject.NewFaultFS(nil)
	healthy := drive(t.TempDir(), probe)
	total := probe.Counts().BytesWritten
	if total <= 0 {
		t.Fatalf("healthy run wrote %d bytes", total)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 41
	}
	for crashAt := int64(0); crashAt <= total; crashAt += stride {
		dir := t.TempDir()
		ffs := faultinject.NewFaultFS(nil)
		ffs.CrashAfterBytes(crashAt)
		replies := drive(dir, ffs) // journal failures degrade; Do still succeeds

		// Reboot on the surviving bytes with a healthy disk.
		e2, err := NewEngine(durableConfig(dir))
		if err != nil {
			t.Fatalf("crashAt %d: reboot failed: %v", crashAt, err)
		}
		prefixEnded := false
		recovered := map[string]bool{}
		for i, rep := range replies {
			st, ok := e2.JobStatus(rep.RunID)
			doneRecovered := ok && st.Status == StatusDone
			if doneRecovered {
				recovered[rep.RunID] = true
				if prefixEnded {
					t.Fatalf("crashAt %d: run %d recovered done after run %d was lost",
						crashAt, i+1, i)
				}
				if string(st.Result) != string(healthy[i].Body) {
					t.Fatalf("crashAt %d: run %d recovered with wrong bytes: %q",
						crashAt, i+1, st.Result)
				}
			} else {
				prefixEnded = true
			}
		}
		// A fresh submission works and never collides with a recovered run.
		rep, err := e2.Do(context.Background(), Request{Experiment: "fig12", Frames: runs + 1})
		if err != nil {
			t.Fatalf("crashAt %d: post-reboot run: %v", crashAt, err)
		}
		if recovered[rep.RunID] {
			t.Fatalf("crashAt %d: new run reused recovered id %s", crashAt, rep.RunID)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		e2.Shutdown(ctx)
		cancel()
	}
}
