package harness

import (
	"context"
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/memmap"
	"gspc/internal/pipeline"
	"gspc/internal/policy"
	"gspc/internal/rendercache"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

// Extension experiments beyond the paper's figures: inter-frame warm-
// cache behavior, sample-density and bank-count ablations of GSPC,
// front-cache scaling fidelity, and additional related-work policies.
// DESIGN.md lists these as the ablation benches for the design choices
// the reproduction makes.

// Extensions returns the extension experiments.
func Extensions() []Experiment {
	return []Experiment{
		{"ext-warm", "Extension: inter-frame reuse — second frame on a warm LLC", RunExtWarm},
		{"ext-policies", "Extension: related-work policies (DIP, peLIFO, CounterDBP) vs DRRIP", RunExtPolicies},
		{"ext-ucp", "Extension: explicit way partitioning (UCP) vs stream-aware GSPC", RunExtUCP},
		{"abl-samples", "Ablation: GSPC sample set density", RunAblSamples},
		{"abl-banks", "Ablation: GSPC counter bank count", RunAblBanks},
		{"abl-frontcache", "Ablation: render cache scaling rule (linear vs area)", RunAblFrontCache},
		{"abl-morton", "Ablation: surface tile layout (row-major vs Morton)", RunAblMorton},
	}
}

// allExperiments returns paper figures plus extensions.
func allExperiments() []Experiment { return append(All(), Extensions()...) }

// ByIDExt finds an experiment among figures and extensions.
func ByIDExt(id string) (Experiment, bool) {
	for _, e := range allExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunExtWarm renders two consecutive frames of each application through
// the same LLC and compares the second frame's misses against a cold
// run: assets persist across frames, so warm caches capture inter-frame
// static texture reuse the paper's single-frame methodology excludes.
func RunExtWarm(o Options) (*Table, error) {
	o = o.normalized()
	geom := o.Geometry(paperLLCBytes)
	t := &Table{
		Title:   fmt.Sprintf("Extension: frame-1 misses, warm LLC relative to cold (LLC %s)", geom),
		Columns: []string{"DRRIP", "GSPC+UCD"},
	}
	specs := []policySpec{specDRRIP(), specGSPC(core.VariantGSPC, 8, true)}

	apps := o.Apps
	if len(apps) == 0 {
		for _, p := range workload.Profiles() {
			apps = append(apps, p.Abbrev)
		}
	}
	ratios := map[string][]float64{}
	var order []string
	ctx := o.ctx()
	for _, ab := range apps {
		p, ok := workload.ProfileByAbbrev(ab)
		if !ok || p.Frames < 2 {
			continue
		}
		// Both frames come from the shared trace cache, so a warm sweep
		// after any suite experiment re-synthesizes nothing.
		tr0, err := genTrace(ctx, o, workload.FrameJob{App: p, Index: 0})
		if err != nil {
			return nil, err
		}
		tr1, err := genTrace(ctx, o, workload.FrameJob{App: p, Index: 1})
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(specs))
		for i, s := range specs {
			// Cold: frame 1 alone.
			cold := cachesim.New(geom, s.make())
			if s.ucd {
				cold.SetBypass(stream.Display, true)
			}
			if err := cachesim.ReplaySource(ctx, cold, tr1, 0); err != nil {
				return nil, err
			}
			// Warm: frame 0 then frame 1 on the same cache; count only
			// frame 1's misses.
			warm := cachesim.New(geom, s.make())
			if s.ucd {
				warm.SetBypass(stream.Display, true)
			}
			if err := cachesim.ReplaySource(ctx, warm, tr0, 0); err != nil {
				return nil, err
			}
			before := warm.Stats.Misses
			if err := cachesim.ReplaySource(ctx, warm, tr1, 0); err != nil {
				return nil, err
			}
			warmMisses := warm.Stats.Misses - before
			vals[i] = float64(warmMisses) / float64(cold.Stats.Misses)
		}
		ratios[ab] = vals
		order = append(order, ab)
		t.AddRow(ab, vals...)
		o.progressf("  %s warm/cold done\n", ab)
	}
	means := make([]float64, len(specs))
	for _, ab := range order {
		for i, v := range ratios[ab] {
			means[i] += v
		}
	}
	for i := range means {
		means[i] /= float64(len(order))
	}
	t.AddRow("MEAN", means...)
	t.Notes = append(t.Notes, "values below 1 quantify inter-frame reuse captured by a warm LLC")
	return t, nil
}

// RunExtPolicies evaluates the additional related-work policies the
// paper discusses but does not plot: DIP, a pseudo-LIFO variant, and a
// counter-based dead block predictor, normalized to DRRIP.
func RunExtPolicies(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	specs := []policySpec{
		{name: "DIP", make: func() cachesim.Policy { return policy.NewDIP() }},
		{name: "peLIFO", make: func() cachesim.Policy { return policy.NewPeLIFO() }},
		{name: "CounterDBP", make: func() cachesim.Policy { return policy.NewCounterDBP() }},
		{name: "Hawkeye", make: func() cachesim.Policy { return policy.NewHawkeye() }},
		specGSPC(core.VariantGSPC, 8, true),
	}
	return normalizedMissTable(o, geom,
		fmt.Sprintf("Extension: related-work policies vs DRRIP (LLC %s)", geom), specs,
		"DIP/peLIFO/CounterDBP are Section 1.1.1 baselines the paper cites but does not evaluate; Hawkeye (ISCA 2016) post-dates the paper")
}

// RunExtUCP evaluates utility-based way partitioning over the stream
// groups against GSPC. The paper argues (Section 1.1.2) that explicit
// partitioning cannot serve 3D rendering because the streams share data;
// UCP walls the render target and texture partitions off from each
// other, cutting the RT-to-texture consumption path that GSPC amplifies.
func RunExtUCP(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	specs := []policySpec{
		{name: "UCP", make: func() cachesim.Policy { return policy.NewUCP() }},
		{name: "UCP+UCD", ucd: true, make: func() cachesim.Policy { return policy.NewUCP() }},
		specGSPC(core.VariantGSPC, 8, true),
	}
	return normalizedMissTable(o, geom,
		fmt.Sprintf("Extension: way partitioning vs stream-aware caching (LLC %s)", geom), specs,
		"the paper argues partitioning cannot exploit inter-stream sharing (Section 1.1.2); on this synthetic suite UCP fares better than that argument suggests — its utility monitor effectively grants the sharing streams a common partition")
}

// RunAblSamples ablates the GSPC sample density: more samples learn
// faster but run SRRIP on a larger cache fraction.
func RunAblSamples(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	mk := func(every int) policySpec {
		return policySpec{
			name: fmt.Sprintf("1/%d", every),
			ucd:  true,
			make: func() cachesim.Policy {
				p := core.DefaultParams(core.VariantGSPC)
				p.SampleEvery = every
				return core.New(p)
			},
		}
	}
	specs := []policySpec{mk(16), mk(32), mk(64), mk(128)}
	return normalizedMissTable(o, geom,
		fmt.Sprintf("Ablation: GSPC sample set density vs DRRIP (LLC %s)", geom), specs,
		"the paper dedicates 16 of every 1024 sets (1/64)")
}

// RunAblBanks ablates the number of counter banks: fewer banks average
// over more of the cache, more banks adapt to spatial phase differences.
func RunAblBanks(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	mk := func(banks int) policySpec {
		return policySpec{
			name: fmt.Sprintf("%d-bank", banks),
			ucd:  true,
			make: func() cachesim.Policy {
				p := core.DefaultParams(core.VariantGSPC)
				p.Banks = banks
				return core.New(p)
			},
		}
	}
	specs := []policySpec{mk(1), mk(2), mk(4), mk(8)}
	return normalizedMissTable(o, geom,
		fmt.Sprintf("Ablation: GSPC counter banks vs DRRIP (LLC %s)", geom), specs,
		"the paper's 8 MB LLC has four banks, each with its own counter block")
}

// RunAblFrontCache compares the render-cache scaling rules: linear (the
// repository default; line-buffer working sets) versus area
// (proportional to pixel count). The filtered LLC stream mix differs, so
// this quantifies the fidelity argument in DESIGN.md.
func RunAblFrontCache(o Options) (*Table, error) {
	o = o.normalized()
	geom := o.Geometry(paperLLCBytes)
	t := &Table{
		Title:   fmt.Sprintf("Ablation: render cache scaling rule (LLC %s)", geom),
		Columns: []string{"linLLCacc", "areaLLCacc", "linGSPC", "areaGSPC"},
	}
	var sums [4]float64
	order := appOrder(o.Jobs())
	perApp := map[string]*[4]float64{}
	counts := map[string]int{}
	ctx := o.ctx()
	// The two scaling rules are swept with two packed buffers reused
	// across every frame: these off-default configurations stay out of
	// the shared trace cache, and buffer reuse keeps the serial sweep
	// allocation-flat.
	lin, area := stream.NewTrace(0), stream.NewTrace(0)
	for _, j := range o.Jobs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		trace.GeneratePackedInto(lin, j, o.Scale, rendercache.DefaultConfig().Scaled(o.Scale))
		trace.GeneratePackedInto(area, j, o.Scale, rendercache.DefaultConfig().Scaled(o.Scale*o.Scale))
		row := perApp[j.App.Abbrev]
		if row == nil {
			row = &[4]float64{}
			perApp[j.App.Abbrev] = row
		}
		linR, err := missRatio(ctx, lin, geom)
		if err != nil {
			return nil, err
		}
		areaR, err := missRatio(ctx, area, geom)
		if err != nil {
			return nil, err
		}
		row[0] += float64(lin.Len())
		row[1] += float64(area.Len())
		row[2] += linR
		row[3] += areaR
		counts[j.App.Abbrev]++
		o.progressf("  %s done\n", j.ID())
	}
	for _, ab := range order {
		row := perApp[ab]
		n := float64(counts[ab])
		vals := []float64{row[0] / n, row[1] / n, row[2] / n, row[3] / n}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(ab, vals...)
	}
	t.AddRow("MEAN", sums[0]/float64(len(order)), sums[1]/float64(len(order)),
		sums[2]/float64(len(order)), sums[3]/float64(len(order)))
	t.Notes = append(t.Notes,
		"linGSPC/areaGSPC: GSPC+UCD misses normalized to DRRIP on the respective trace")
	return t, nil
}

// missRatio replays tr under GSPC+UCD and DRRIP and returns their miss
// ratio. Its callers synthesize off-default traces directly, outside the
// interval-sampling machinery, so the replays are always exact.
func missRatio(ctx context.Context, tr *stream.Trace, geom cachesim.Geometry) (float64, error) {
	rd, err := runOffline(ctx, tr, specDRRIP(), geom, nil)
	if err != nil {
		return 0, err
	}
	rg, err := runOffline(ctx, tr, specGSPC(core.VariantGSPC, 8, true), geom, nil)
	if err != nil {
		return 0, err
	}
	if rd.stats.Misses == 0 {
		return 1, nil
	}
	return float64(rg.stats.Misses) / float64(rd.stats.Misses), nil
}

// normalizedMissTable runs specs over the suite and tabulates per-app
// miss counts normalized to DRRIP.
func normalizedMissTable(o Options, geom cachesim.Geometry, title string, specs []policySpec, note string) (*Table, error) {
	missD, miss, err := missSweep(o, geom, specs)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.name)
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, len(specs))
	for _, ab := range order {
		vals := make([]float64, len(specs))
		for i := range specs {
			vals[i] = float64(miss[ab][i]) / float64(missD[ab])
			sums[i] += vals[i]
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, len(specs))
	for i := range means {
		means[i] = sums[i] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	if note != "" {
		t.Notes = append(t.Notes, note)
	}
	return t, nil
}

// RunAblMorton compares the default row-major-tiled surfaces against
// Morton (Z-order) layouts for the GPU-internal surfaces: Morton packs
// screen-space neighborhoods into compact block ranges, changing how the
// render caches and DRAM rows see the same rendering.
func RunAblMorton(o Options) (*Table, error) {
	o = o.normalized()
	geom := o.Geometry(paperLLCBytes)
	t := &Table{
		Title:   fmt.Sprintf("Ablation: surface tile layout, row-major vs Morton (LLC %s)", geom),
		Columns: []string{"rowmajAcc", "mortonAcc", "rowmajGSPC", "mortonGSPC"},
	}
	var sums [4]float64
	order := appOrder(o.Jobs())
	perApp := map[string]*[4]float64{}
	counts := map[string]int{}
	ctx := o.ctx()
	// Layout is a synthesis parameter the trace-cache key does not carry,
	// so both layouts are rendered directly into packed buffers reused
	// across frames.
	rowTr, morTr := stream.NewTrace(0), stream.NewTrace(0)
	for _, j := range o.Jobs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := rendercache.DefaultConfig().Scaled(o.Scale)
		traceForLayout(rowTr, j, o.Scale, cfg, memmap.LayoutRowMajor)
		traceForLayout(morTr, j, o.Scale, cfg, memmap.LayoutMorton)
		row := perApp[j.App.Abbrev]
		if row == nil {
			row = &[4]float64{}
			perApp[j.App.Abbrev] = row
		}
		rowR, err := missRatio(ctx, rowTr, geom)
		if err != nil {
			return nil, err
		}
		morR, err := missRatio(ctx, morTr, geom)
		if err != nil {
			return nil, err
		}
		row[0] += float64(rowTr.Len())
		row[1] += float64(morTr.Len())
		row[2] += rowR
		row[3] += morR
		counts[j.App.Abbrev]++
		o.progressf("  %s done\n", j.ID())
	}
	for _, ab := range order {
		row := perApp[ab]
		n := float64(counts[ab])
		vals := []float64{row[0] / n, row[1] / n, row[2] / n, row[3] / n}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(ab, vals...)
	}
	t.AddRow("MEAN", sums[0]/float64(len(order)), sums[1]/float64(len(order)),
		sums[2]/float64(len(order)), sums[3]/float64(len(order)))
	t.Notes = append(t.Notes, "GSPC columns: GSPC+UCD misses normalized to DRRIP on the same trace")
	return t, nil
}

// traceForLayout renders one frame with an explicit surface layout into
// t, resetting it first (Seq is implicit in the packed representation).
func traceForLayout(t *stream.Trace, j workload.FrameJob, scale float64, cfg rendercache.Config, layout memmap.Layout) {
	t.Reset()
	rc := rendercache.New(cfg, t)
	frame := j.App.BuildFrameLayout(j.Index, scale, layout)
	pipeline.NewRenderer(rc).RenderFrame(frame)
}
