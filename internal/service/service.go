// Package service turns the one-shot experiment harness into a serving
// system: a canonical request type with deterministic cache keys, a
// bounded job queue with backpressure, a worker pool, coalescing of
// concurrent identical requests, and an in-memory result cache whose
// eviction is delegated to the repo's own LLC replacement policies
// (internal/policy) — the reproduction dogfooding its subject matter.
// cmd/gspcd exposes the engine over HTTP.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"gspc/internal/harness"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

// Request names one experiment run: an experiment id plus the harness
// options that shape it. It is the wire format of POST /v1/runs.
type Request struct {
	Experiment string `json:"experiment"`
	// Scale is the linear frame scale (0 = harness default, 0.25).
	Scale float64 `json:"scale,omitempty"`
	// CapacityFactor calibrates the scaled LLC capacity (0 = default).
	CapacityFactor float64 `json:"capacity_factor,omitempty"`
	// Frames truncates each application's frame list (0 = all).
	Frames int `json:"frames,omitempty"`
	// Apps restricts the run to the named applications (empty = all).
	Apps []string `json:"apps,omitempty"`
	// Fidelity selects the simulation fidelity: "exact" (the default)
	// replays every access of every LLC set, "sampled" composes set
	// sampling with interval sampling for an interactive answer with an
	// estimated error bound attached (Result.Sampling).
	Fidelity string `json:"fidelity,omitempty"`
	// SampleRatio and SampleSeed tune sampled fidelity (0 = harness
	// defaults); both are ignored — and canonicalized away — under exact
	// fidelity, where they cannot change the result.
	SampleRatio int    `json:"sample_ratio,omitempty"`
	SampleSeed  uint64 `json:"sample_seed,omitempty"`
	// Workers caps the harness trace-synthesis pool (0 = default). It
	// changes wall-clock time only, never results, so it is excluded
	// from the cache key.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps this run's wall-clock in milliseconds, on top of
	// (never beyond) the engine-wide job timeout; 0 means no extra cap.
	// Like Workers it shapes execution, not the result, so it is
	// excluded from the cache key: a replay under a generous timeout may
	// be served from a run submitted under a tight one.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BadRequestError reports a request the engine refuses to run; HTTP
// handlers map it to 400.
type BadRequestError struct{ Reason string }

func (e *BadRequestError) Error() string { return "service: bad request: " + e.Reason }

// Normalize validates the request and folds every spelling of the
// defaults onto one canonical form: harness defaults are applied, the
// app list is de-duplicated, sorted, and checked against the workload
// suite, and an explicit full app list collapses to "all apps". Two
// requests for the same computation therefore normalize identically,
// which is what makes Key a sound cache key.
func (r Request) Normalize() (Request, error) {
	if _, ok := harness.ByIDExt(r.Experiment); !ok {
		return r, &BadRequestError{Reason: fmt.Sprintf("unknown experiment %q", r.Experiment)}
	}
	if r.Scale < 0 || r.Scale > 4 {
		return r, &BadRequestError{Reason: fmt.Sprintf("scale %g out of range (0, 4]", r.Scale)}
	}
	if r.TimeoutMS < 0 {
		return r, &BadRequestError{Reason: fmt.Sprintf("timeout_ms %d must be non-negative", r.TimeoutMS)}
	}
	switch r.Fidelity {
	case "", harness.FidelityExact, harness.FidelitySampled:
	default:
		return r, &BadRequestError{Reason: fmt.Sprintf(
			"unknown fidelity %q (want %q or %q)", r.Fidelity, harness.FidelityExact, harness.FidelitySampled)}
	}
	if r.SampleRatio < 0 {
		return r, &BadRequestError{Reason: fmt.Sprintf("sample_ratio %d must be non-negative", r.SampleRatio)}
	}
	o := harness.Options{
		Scale:           r.Scale,
		CapacityFactor:  r.CapacityFactor,
		MaxFramesPerApp: r.Frames,
		Workers:         r.Workers,
		Fidelity:        r.Fidelity,
		SampleSetRatio:  r.SampleRatio,
		SampleSeed:      r.SampleSeed,
	}.Normalized()
	r.Scale = o.Scale
	r.CapacityFactor = o.CapacityFactor
	r.Frames = o.MaxFramesPerApp
	r.Workers = o.Workers
	// The harness canonicalizes fidelity: exact zeroes the sampling
	// knobs (they cannot change an exact result), sampled fills in the
	// default ratio and seed — so every spelling of the same computation
	// carries the same knobs into Key.
	r.Fidelity = o.Fidelity
	r.SampleRatio = o.SampleSetRatio
	r.SampleSeed = o.SampleSeed

	if len(r.Apps) > 0 {
		seen := map[string]bool{}
		apps := make([]string, 0, len(r.Apps))
		for _, a := range r.Apps {
			a = strings.TrimSpace(a)
			if a == "" || seen[a] {
				continue
			}
			if _, ok := workload.ProfileByAbbrev(a); !ok {
				return r, &BadRequestError{Reason: fmt.Sprintf("unknown application %q", a)}
			}
			seen[a] = true
			apps = append(apps, a)
		}
		sort.Strings(apps)
		if len(apps) == len(workload.Profiles()) {
			apps = nil // the full suite, spelled out
		}
		r.Apps = apps
	}
	return r, nil
}

// Options maps the request to harness options. Call Normalize first.
func (r Request) Options() harness.Options {
	return harness.Options{
		Scale:           r.Scale,
		CapacityFactor:  r.CapacityFactor,
		MaxFramesPerApp: r.Frames,
		Apps:            r.Apps,
		Workers:         r.Workers,
		Fidelity:        r.Fidelity,
		SampleSetRatio:  r.SampleRatio,
		SampleSeed:      r.SampleSeed,
	}
}

// Key returns the deterministic cache key of a normalized request: a
// hash over every field that can change the result. Workers is excluded
// (parallelism never changes experiment output) and so is any progress
// sink. Identical computations — however their defaults were spelled —
// share a key.
func (r Request) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "exp=%s|scale=%g|capf=%g|frames=%d|apps=%s",
		r.Experiment, r.Scale, r.CapacityFactor, r.Frames, strings.Join(r.Apps, ","))
	// Sampled runs key on the full sampling configuration; exact runs
	// omit the component entirely so every pre-fidelity key (and every
	// durable snapshot holding one) is unchanged.
	if r.Fidelity == harness.FidelitySampled {
		fmt.Fprintf(h, "|fid=sampled|ratio=%d|seed=%d", r.SampleRatio, r.SampleSeed)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ExactTwin returns the exact-fidelity request that answers the same
// question as r without sampling error — what the engine escalates a
// sampled run to in the background. The twin of an exact request is
// itself.
func (r Request) ExactTwin() Request {
	r.Fidelity = harness.FidelityExact
	r.SampleRatio = 0
	r.SampleSeed = 0
	return r
}

// SampledTwin returns the sampled-fidelity request answering the same
// question as r at an eighth of the work — what the memory governor's
// ladder downgrades admissions to under pressure. Sampling knobs are
// reset to the harness defaults (re-normalizing fills them in), so every
// downgraded spelling of a computation lands on one cache key. The twin
// of a sampled request is itself.
func (r Request) SampledTwin() Request {
	if r.Fidelity == harness.FidelitySampled {
		return r
	}
	r.Fidelity = harness.FidelitySampled
	r.SampleRatio = 0
	r.SampleSeed = 0
	// r was already normalized; switching fidelity on a valid request
	// cannot make it invalid, so the error is structurally nil.
	r, _ = r.Normalize()
	return r
}

// EstimateRequestBytes estimates the peak in-flight memory a request
// holds while running: the packed trace records of every selected frame
// (EstimateAccesses × the 9-byte packed record), discounted 8× for
// sampled fidelity to mirror the work discount admission already
// applies. It is the figure the governor reserves at admission and the
// MaxRequestBytes ceiling compares against.
func EstimateRequestBytes(r Request) int64 {
	var total int64
	for _, job := range r.Options().Jobs() {
		total += int64(trace.EstimateAccesses(job, r.Scale)) * stream.RecordBytes
	}
	if r.Fidelity == harness.FidelitySampled {
		total /= 8
	}
	return total
}

// ExperimentInfo describes one runnable experiment for GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Kind  string `json:"kind"` // "paper" or "extension"
}

// Experiments lists every runnable experiment: the paper's figures and
// tables first, then the extensions and ablations.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range harness.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Kind: "paper"})
	}
	for _, e := range harness.Extensions() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Kind: "extension"})
	}
	return out
}
