package harness

import (
	"context"
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/dram"
	"gspc/internal/gpu"
	"gspc/internal/policy"
	"gspc/internal/stream"
	"gspc/internal/telemetry"
	"gspc/internal/workload"
)

// perfSpecs are the policies of the performance figures. Per Section 5.2,
// from Figure 15 onward every policy runs with uncached displayable color.
func perfSpecs() []policySpec {
	return []policySpec{
		{name: "NRU", ucd: true, make: func() cachesim.Policy { return policy.NewNRU() }},
		{name: "GS-DRRIP", ucd: true, make: func() cachesim.Policy { return policy.NewGSDRRIP(2) }},
		specGSPC(core.VariantGSPC, 8, true),
	}
}

// runPerf simulates the suite on the timing model and returns a table of
// per-app fps normalized to DRRIP (+UCD), with absolute mean fps noted.
func runPerf(o Options, title string, cfg gpu.Config) (*Table, error) {
	specs := perfSpecs()
	base := policySpec{name: "DRRIP", ucd: true, make: func() cachesim.Policy { return policy.NewDRRIP(2) }}

	cycD := map[string]int64{}
	cyc := map[string][]int64{}
	var framesD, framesTot int64
	var cycSumD int64
	cycSum := make([]int64, len(specs))
	err := forEachFrame(o, func(j workload.FrameJob, tr *stream.Trace, plan *samplePlan) error {
		ab := j.App.Abbrev
		cfgRun := cfg
		cfgRun.UncachedDisplay = true
		// Sampled fidelity applies interval sampling only: the timing model
		// simulates the warmup plus measured window of the trace (set
		// sampling would distort queueing and DRAM row behavior) and the
		// cycle counts are extrapolated by the estimated full-trace record
		// ratio. The factor cancels in the normalized columns; it only
		// shapes the absolute-fps note.
		var src stream.Source = tr
		cycleScale := 1.0
		if plan != nil {
			w := stream.NewWindow(tr, plan.warmStart, tr.Len())
			if n := w.Len(); n > 0 && plan.fullEst > 0 {
				src = w
				cycleScale = plan.fullEst / float64(n)
			}
		}
		// The timing simulator runs one whole trace per call and does not
		// poll the context internally, so the fan-out's per-job context
		// check bounds cancellation latency to one simulation — the same
		// bound the former sequential loop had. Results are positional:
		// index 0 is the DRRIP baseline, 1..len(specs) the evaluated
		// policies, all reading the one shared packed trace.
		cycles := make([]int64, len(specs)+1)
		err := fanOut(o.ctx(), o.replayWorkers(), len(specs)+1, func(ctx context.Context, i int) error {
			spec := base
			if i > 0 {
				spec = specs[i-1]
			}
			defer trackStage(ctx, pickTiming)()
			defer telemetry.StartFrom(ctx, spec.name, "timing", telemetry.String("job", j.ID())).End()
			cycles[i] = gpu.SimulateSource(src, cfgRun, spec.make()).Cycles
			return nil
		})
		if err != nil {
			return err
		}
		if cycleScale != 1 {
			for i := range cycles {
				cycles[i] = scale64(cycles[i], cycleScale)
			}
		}
		cycD[ab] += cycles[0]
		cycSumD += cycles[0]
		framesD++
		a := cyc[ab]
		if a == nil {
			a = make([]int64, len(specs))
		}
		for i := range specs {
			a[i] += cycles[i+1]
			cycSum[i] += cycles[i+1]
		}
		cyc[ab] = a
		framesTot++
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{Title: title}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.name)
	}
	order := appOrder(o.Jobs())
	sums := make([]float64, len(specs))
	for _, ab := range order {
		vals := make([]float64, len(specs))
		for i := range specs {
			// Performance ratio = cycle ratio inverted.
			vals[i] = float64(cycD[ab]) / float64(cyc[ab][i])
			sums[i] += vals[i]
		}
		t.AddRow(ab, vals...)
	}
	means := make([]float64, len(specs))
	for i := range means {
		means[i] = sums[i] / float64(len(order))
	}
	t.AddRow("MEAN", means...)
	if framesD > 0 {
		fpsD := cfg.ClockGHz * 1e9 * float64(framesD) / float64(cycSumD)
		fpsG := cfg.ClockGHz * 1e9 * float64(framesTot) / float64(cycSum[len(specs)-1])
		t.Notes = append(t.Notes, fmt.Sprintf(
			"model frame rates at this scale: DRRIP %.1f fps, GSPC %.1f fps (absolute values are model-specific)", fpsD, fpsG))
	}
	return t, nil
}

// RunFig15 reproduces Figure 15: performance normalized to DRRIP on the
// baseline GPU with an 8 MB 16-way LLC.
func RunFig15(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)
	cfg := gpu.DefaultConfig(geom)
	t, err := runPerf(o, fmt.Sprintf("Figure 15: performance vs DRRIP (LLC %s)", geom), cfg)
	if err == nil {
		t.Notes = append(t.Notes, "paper means: NRU 0.93, GS-DRRIP 1.008, GSPC 1.08")
	}
	return t, err
}

// RunFig16 reproduces Figure 16: the same on a 16 MB 16-way LLC.
func RunFig16(o Options) (*Table, error) {
	geom := o.Geometry(2 * paperLLCBytes)
	cfg := gpu.DefaultConfig(geom)
	t, err := runPerf(o, fmt.Sprintf("Figure 16: performance vs DRRIP (LLC %s)", geom), cfg)
	if err == nil {
		t.Notes = append(t.Notes, "paper means: NRU 0.97, GS-DRRIP 1.04, GSPC 1.118")
	}
	return t, err
}

// RunFig17 reproduces Figure 17: sensitivity to a faster DRAM system
// (upper panel) and to a less aggressive GPU (lower panel), both with the
// 8 MB LLC. The two panels are emitted as consecutive row groups.
func RunFig17(o Options) (*Table, error) {
	geom := o.Geometry(paperLLCBytes)

	fast := gpu.DefaultConfig(geom)
	fast.DRAM.Timing = dram.DDR3_1867()
	t1, err := runPerf(o, "", fast)
	if err != nil {
		return nil, err
	}

	small := gpu.DefaultConfig(geom)
	small.Cores = 64
	small.Samplers = 8
	t2, err := runPerf(o, "", small)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("Figure 17: performance vs DRRIP under changed environments (LLC %s)", geom),
		Columns: t1.Columns,
	}
	for _, r := range t1.Rows {
		t.AddRow("ddr3-1867/"+r.Label, r.Values...)
	}
	for _, r := range t2.Rows {
		t.AddRow("smallgpu/"+r.Label, r.Values...)
	}
	t.Notes = append(t.Notes,
		"paper means: DDR3-1867 — NRU 0.93, GSPC 1.071; 64-core/8-sampler GPU — NRU 0.947, GSPC 1.059")
	return t, nil
}
