// Package pipeline models the Direct3D 10/11 rendering pipeline of
// Section 2.1 at the memory-access level. A Frame is a list of render
// passes; each pass binds a render target, optional depth/stencil
// surfaces, and draws whose rasterization, depth testing, texture
// sampling, blending, and color output generate the raw access streams
// that flow through the render cache complex into the LLC.
//
// The model reproduces the structural sources of locality the paper
// characterizes: tiled surface traversal (near-term spatial locality
// captured by the render caches), overlapping geometry re-testing the
// same depth pixels (Z reuse, Figure 9), wrapped MIP-mapped texture
// sampling with bilinear footprints (texture locality, Figure 7), and —
// crucially — multi-pass render-to-texture, where surfaces produced by
// the render target stream are consumed by the texture samplers
// (inter-stream reuse, Figure 6).
package pipeline

import (
	"fmt"

	"gspc/internal/memmap"
	"gspc/internal/rendercache"
	"gspc/internal/xrand"
)

// Mesh is an indexed triangle list.
type Mesh struct {
	Vertices *memmap.Buffer
	Indices  *memmap.Buffer
	// TriCount is the number of triangles the mesh contributes per draw.
	TriCount int
}

// TextureBinding attaches a texture to a draw with a sampling scale (the
// texel-to-pixel ratio, which drives MIP level selection) and a filter.
type TextureBinding struct {
	Texture *memmap.Texture
	// Scale is texels advanced per screen pixel at level 0; 1.0 samples
	// the texture at native resolution, larger values push sampling to
	// coarser MIP levels.
	Scale float64
	// Trilinear samples two adjacent MIP levels (8 taps) instead of one
	// (4 taps, bilinear).
	Trilinear bool
	// Aligned fixes the screen-to-texture mapping origin at the
	// normalized coordinates (U0, V0), as for screen-space sources:
	// shadow map lookups, post-processing reads of earlier render
	// targets. Draws at different screen positions then sample disjoint
	// regions of the source, and a full-screen aligned draw at Scale
	// srcW/W consumes the source exactly once. Unaligned bindings get a
	// pseudo-random per-draw origin (distinct objects enter a material
	// texture at unrelated places).
	Aligned bool
	U0, V0  float64
}

// Draw is one draw call: a mesh rasterized over a portion of the target,
// shaded with a set of bound textures.
type Draw struct {
	Mesh     *Mesh
	Textures []TextureBinding
	// Coverage is the fraction of the render target area the draw
	// covers; the rasterizer splits it into Patches rectangular patches
	// at pseudo-random positions (triangle clusters in screen space).
	Coverage float64
	Patches  int
	// ZPassRate is the fraction of depth tests that pass (survive
	// occlusion). Failed pixels are not shaded and produce no color.
	ZPassRate float64
	// Blend makes this draw's color output read-modify-write (render
	// target loads before stores), as for transparent geometry.
	Blend bool
	// HiZRejectRate is the fraction of tiles rejected wholesale by the
	// hierarchical depth test before any per-pixel work.
	HiZRejectRate float64
}

// Pass is one rendering pass.
type Pass struct {
	// Target receives pixel colors; nil for depth-only passes (shadow
	// map rendering).
	Target *memmap.Surface
	// ExtraTargets are additional simultaneously bound render targets
	// (DirectX 10 allows eight); deferred-shading G-buffer passes write
	// several. Each shaded pixel stores to every extra target.
	ExtraTargets []*memmap.Surface
	// Depth enables the depth test against this Z buffer when non-nil.
	Depth *memmap.Surface
	// HiZ is the hierarchical depth buffer paired with Depth.
	HiZ *memmap.Surface
	// Stencil enables the stencil test when non-nil.
	Stencil *memmap.Surface
	// SamplesDynamic marks a pass that samples a texture aliasing a
	// render target produced earlier in the frame; the texture hierarchy
	// is invalidated before the pass (sampler cache barrier).
	SamplesDynamic bool
	Draws          []*Draw
}

// Frame is a complete frame rendering job.
type Frame struct {
	Width, Height int
	Passes        []*Pass
	// BackBuffer is the final displayable surface; after the last pass
	// its blocks are emitted on the display stream.
	BackBuffer *memmap.Surface
	// ConstBase/ConstBlocks locate the shader constant region touched
	// per draw ("other" stream).
	ConstBase   uint64
	ConstBlocks int
	// Seed drives every stochastic rasterization choice for the frame.
	Seed uint64
}

// HiZGranularity is the screen-pixel footprint (per side) of one HiZ
// entry: the hierarchical Z buffer stores one min/max entry per 4x4 pixel
// region (the finest HiZ level, which dominates HiZ traffic).
const HiZGranularity = 4

// ZBytesPerPixel is the effective storage per depth sample. Real GPUs
// keep the depth buffer compressed (typically 4:1 or better for plane-
// encodable tiles); we model the bandwidth effect by storing 1 byte per
// 32-bit depth sample, so one 64-byte block carries an 8x8 pixel depth
// tile. DESIGN.md documents this substitution.
const ZBytesPerPixel = 1

// HiZBytesPerEntry is the size of one hierarchical depth entry (min, max,
// coverage mask, and the coarser pyramid levels amortized onto the finest
// level, which dominates traffic).
const HiZBytesPerEntry = 8

// texCtx is the per-patch sampling state of one bound texture.
type texCtx struct {
	level0 *memmap.Surface
	level1 *memmap.Surface
	u0, v0 float64
	scale  float64
}

// Renderer executes frames against a render cache complex.
type Renderer struct {
	rc  *rendercache.Complex
	rng *xrand.RNG

	// PixelsShaded counts pixels that survived depth testing and were
	// shaded; exported for workload calibration tests.
	PixelsShaded int64
	// PixelsRejected counts pixels killed by HiZ or the depth test.
	PixelsRejected int64

	backBuffer *memmap.Surface
}

// NewRenderer returns a renderer emitting into rc.
func NewRenderer(rc *rendercache.Complex) *Renderer {
	return &Renderer{rc: rc}
}

// RenderFrame executes every pass of the frame and resolves the back
// buffer to the display stream.
func (r *Renderer) RenderFrame(f *Frame) {
	if f.BackBuffer == nil {
		panic("pipeline: frame has no back buffer")
	}
	r.rng = xrand.New(f.Seed)
	r.backBuffer = f.BackBuffer
	for pi, p := range f.Passes {
		if p.SamplesDynamic {
			r.rc.InvalidateTextures()
		}
		r.renderPass(f, p, uint64(pi))
		// Unbinding the pass's surfaces flushes dirty render cache
		// blocks to the LLC so later passes (and the display engine)
		// observe produced data there.
		r.rc.Flush()
	}
}

func (r *Renderer) renderPass(f *Frame, p *Pass, passID uint64) {
	rng := r.rng.Fork(passID)
	for di, d := range p.Draws {
		r.renderDraw(f, p, d, rng.Fork(uint64(di)))
	}
}

func (r *Renderer) renderDraw(f *Frame, p *Pass, d *Draw, rng *xrand.RNG) {
	r.processGeometry(d, rng)
	r.touchConstants(f, rng)

	target := p.Target
	if target == nil {
		target = p.Depth
	}
	if target == nil {
		return // nothing to rasterize against
	}
	w, h := target.Width, target.Height

	// Establish the per-draw texture mappings once: all patches of a draw
	// share one affine screen-to-texture function, so a draw's footprint
	// in a texture is coherent and two draws overlap only where their
	// screen coverage (aligned sources) or random origins (materials)
	// overlap.
	texs := make([]texCtx, len(d.Textures))
	for i, tb := range d.Textures {
		lod, frac := lodOf(tb.Scale)
		lv0 := tb.Texture.Level(lod)
		var lv1 *memmap.Surface
		if tb.Trilinear && frac > 0.25 && lod+1 < tb.Texture.NumLevels() {
			lv1 = tb.Texture.Level(lod + 1)
		}
		step := tb.Scale / float64(int(1)<<lod)
		u0 := rng.Float64() * float64(lv0.Width)
		v0 := rng.Float64() * float64(lv0.Height)
		if tb.Aligned {
			u0 = tb.U0 * float64(lv0.Width)
			v0 = tb.V0 * float64(lv0.Height)
		}
		texs[i] = texCtx{level0: lv0, level1: lv1, u0: u0, v0: v0, scale: step}
	}

	patches := d.Patches
	if patches < 1 {
		patches = 1
	}
	// Split the covered area into patches of a pseudo-random aspect.
	area := d.Coverage * float64(w) * float64(h) / float64(patches)
	if area < 1 {
		area = 1
	}
	for pi := 0; pi < patches; pi++ {
		prng := rng.Fork(uint64(pi))
		aspect := prng.Range(0.5, 2.0)
		pw := int(sqrt(area * aspect))
		if pw < 1 {
			pw = 1
		}
		if pw > w {
			pw = w
		}
		ph := int(area) / pw
		if ph < 1 {
			ph = 1
		}
		if ph > h {
			ph = h
		}
		px := prng.Intn(max(1, w-pw+1))
		py := prng.Intn(max(1, h-ph+1))
		r.rasterizePatch(p, d, texs, px, py, pw, ph, prng)
	}
}

// processGeometry reads the index and vertex streams for the draw.
// Indices are read sequentially; vertex references follow a triangle-
// strip-like pattern so the vertex cache captures the short-term reuse of
// shared vertices, as real input assemblers do.
func (r *Renderer) processGeometry(d *Draw, rng *xrand.RNG) {
	m := d.Mesh
	if m == nil || m.TriCount == 0 {
		return
	}
	nv := m.Vertices.Count()
	if nv == 0 {
		return
	}
	base := rng.Intn(nv)
	idxCount := m.Indices.Count()
	for t := 0; t < m.TriCount; t++ {
		for k := 0; k < 3; k++ {
			i := (t*3 + k) % max(1, idxCount)
			r.rc.VertexIndex(m.Indices.ElemAddr(i))
			// Strip locality: triangle t reuses vertices t and t+1 of
			// triangle t-1 and introduces one new vertex.
			v := (base + t + k) % nv
			r.rc.Vertex(m.Vertices.ElemAddr(v))
		}
	}
}

// touchConstants models shader constant/state fetches per draw.
func (r *Renderer) touchConstants(f *Frame, rng *xrand.RNG) {
	if f.ConstBlocks <= 0 {
		return
	}
	for i := 0; i < 4; i++ {
		blk := rng.Intn(f.ConstBlocks)
		r.rc.Other(f.ConstBase + uint64(blk*memmap.BlockSize))
	}
}

// rasterizePatch traverses the patch tile-by-tile in raster order,
// performing hierarchical and per-pixel depth tests, texture sampling,
// stenciling, and color output.
func (r *Renderer) rasterizePatch(p *Pass, d *Draw, texs []texCtx, px, py, pw, ph int, rng *xrand.RNG) {
	target := p.Target
	if target == nil {
		target = p.Depth
	}
	tw, th := target.TileW(), target.TileH()

	tx0, ty0 := px/tw, py/th
	tx1, ty1 := (px+pw-1)/tw, (py+ph-1)/th
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			x0, y0 := tx*tw, ty*th

			// Patch-boundary tiles are only partially covered, so the
			// color pipeline must read-modify-write them (interior tiles
			// are fully overwritten and skip the fetch).
			if p.Target != nil && (tx == tx0 || tx == tx1 || ty == ty0 || ty == ty1) {
				ca := p.Target.Addr(x0, y0)
				if p.Target == r.backBuffer {
					r.rc.DisplayColor(ca, false)
				} else {
					r.rc.RT(ca, false)
				}
			}

			// Hierarchical depth test: one HiZ entry per 8x8 region,
			// tested once per tile.
			if p.Depth != nil && p.HiZ != nil {
				ha := p.HiZ.Addr(x0/HiZGranularity, y0/HiZGranularity)
				r.rc.HiZ(ha, false)
				if rng.Bool(d.HiZRejectRate) {
					r.PixelsRejected += int64(tw * th)
					continue
				}
				// The HiZ min/max is updated when the tile's depth
				// range changes (a fraction of tiles).
				if rng.Bool(0.25) {
					r.rc.HiZ(ha, true)
				}
			}

			for y := y0; y < y0+th; y++ {
				for x := x0; x < x0+tw; x++ {
					r.shadePixel(p, d, texs, x, y, rng)
				}
			}
		}
	}
}

func (r *Renderer) shadePixel(p *Pass, d *Draw, texs []texCtx, x, y int, rng *xrand.RNG) {
	// Depth test: read the stored depth, compare, conditionally write.
	if p.Depth != nil {
		za := p.Depth.Addr(x, y)
		r.rc.Z(za, false)
		if !rng.Bool(d.ZPassRate) {
			r.PixelsRejected++
			return
		}
		r.rc.Z(za, true)
	}

	// Stencil test (read; occasional mask update).
	if p.Stencil != nil {
		sa := p.Stencil.Addr(x, y)
		r.rc.Stencil(sa, false)
		if rng.Bool(0.1) {
			r.rc.Stencil(sa, true)
		}
	}

	// Texture sampling: a bilinear footprint of 4 texels per level, with
	// wrap addressing (tiled materials revisit the same texels — the
	// source of far-flung intra-stream texture reuse).
	for i := range texs {
		t := &texs[i]
		u := t.u0 + float64(x)*t.scale
		v := t.v0 + float64(y)*t.scale
		r.sampleBilinear(t.level0, u, v)
		if t.level1 != nil {
			r.sampleBilinear(t.level1, u/2, v/2)
		}
	}

	// Color output: blending reads the destination first. Colors written
	// to the back buffer are the displayable color stream of Section 2.1
	// (displayable color is still a render target from the policies'
	// viewpoint, which is exactly what the UCD variants exploit).
	if p.Target != nil {
		ca := p.Target.Addr(x, y)
		if p.Target == r.backBuffer {
			if d.Blend {
				r.rc.DisplayColor(ca, false)
			}
			r.rc.DisplayColor(ca, true)
		} else {
			if d.Blend {
				r.rc.RT(ca, false)
			}
			r.rc.RT(ca, true)
		}
	}
	for _, et := range p.ExtraTargets {
		r.rc.RT(et.Addr(x, y), true)
	}
	r.PixelsShaded++
}

// sampleBilinear issues the four taps of a bilinear filter with wrap
// addressing on the given MIP level surface.
func (r *Renderer) sampleBilinear(s *memmap.Surface, u, v float64) {
	iu, iv := int(u), int(v)
	w, h := s.Width, s.Height
	u0, v0 := wrap(iu, w), wrap(iv, h)
	u1, v1 := wrap(iu+1, w), wrap(iv+1, h)
	r.rc.Texture(s.Addr(u0, v0))
	r.rc.Texture(s.Addr(u1, v0))
	r.rc.Texture(s.Addr(u0, v1))
	r.rc.Texture(s.Addr(u1, v1))
}

func wrap(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// lodOf converts a texel-to-pixel scale into a MIP level and the
// fractional part used to decide trilinear blending. Levels are chosen by
// rounding so the effective step on the selected level stays near one
// texel per pixel, as real MIP selection does.
func lodOf(scale float64) (lod int, frac float64) {
	if scale <= 1 {
		return 0, 0
	}
	l := 0
	s := scale
	for s >= 1.5 {
		s /= 2
		l++
	}
	f := s - 1
	if f < 0 {
		f = 0
	}
	return l, f
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for patch sizing.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Validate checks frame structural invariants and returns a descriptive
// error for malformed frames (used by workload tests).
func (f *Frame) Validate() error {
	if f.BackBuffer == nil {
		return fmt.Errorf("pipeline: frame missing back buffer")
	}
	if f.Width <= 0 || f.Height <= 0 {
		return fmt.Errorf("pipeline: invalid frame size %dx%d", f.Width, f.Height)
	}
	for i, p := range f.Passes {
		if p.Target == nil && p.Depth == nil {
			return fmt.Errorf("pipeline: pass %d has neither target nor depth", i)
		}
		if p.HiZ != nil && p.Depth == nil {
			return fmt.Errorf("pipeline: pass %d has HiZ without depth", i)
		}
		for j, d := range p.Draws {
			if d.Coverage <= 0 || d.Coverage > 8 {
				return fmt.Errorf("pipeline: pass %d draw %d coverage %f out of range", i, j, d.Coverage)
			}
			if d.ZPassRate < 0 || d.ZPassRate > 1 {
				return fmt.Errorf("pipeline: pass %d draw %d z pass rate %f out of range", i, j, d.ZPassRate)
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
