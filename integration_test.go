// Integration tests crossing package boundaries: workload -> pipeline ->
// render caches -> LLC -> policies -> timing model, verifying the
// end-to-end invariants a figure regeneration relies on.
package gspc_test

import (
	"bytes"
	"testing"

	"gspc/internal/analysis"
	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/gpu"
	"gspc/internal/harness"
	"gspc/internal/policy"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

const itScale = 0.12

func itTrace(t testing.TB, jobIdx int) []stream.Access {
	t.Helper()
	jobs := workload.Suite()
	return trace.GenerateFrame(jobs[jobIdx], itScale)
}

func itGeom() cachesim.Geometry {
	return cachesim.Geometry{SizeBytes: 192 << 10, Ways: 16, BlockSize: 64}
}

// TestEndToEndDeterminism: the whole stack — trace synthesis, offline
// replay, and the timing simulator — must be bit-reproducible.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		tr := itTrace(t, 20)
		c := cachesim.New(itGeom(), core.New(core.DefaultParams(core.VariantGSPC)))
		for _, a := range tr {
			c.Access(a)
		}
		cfg := gpu.DefaultConfig(itGeom())
		cfg.Cores = 8
		r := gpu.Simulate(tr, cfg, policy.NewDRRIP(2))
		return c.Stats.Misses, r.Cycles
	}
	m1, cy1 := run()
	m2, cy2 := run()
	if m1 != m2 || cy1 != cy2 {
		t.Fatalf("end-to-end nondeterminism: misses %d/%d cycles %d/%d", m1, m2, cy1, cy2)
	}
}

// TestBeladyLowerBoundsOnRealTrace: Belady's optimal must lower-bound
// every policy in the repository on a real generated frame.
func TestBeladyLowerBoundsOnRealTrace(t *testing.T) {
	tr := itTrace(t, 2)
	geom := itGeom()
	opt := cachesim.New(geom, belady.NewOPT(belady.NextUse(tr, 6)))
	for _, a := range tr {
		opt.Access(a)
	}
	rivals := []cachesim.Policy{
		policy.NewDRRIP(2), policy.NewNRU(), policy.NewLRU(), policy.NewSRRIP(2),
		policy.NewGSDRRIP(2), policy.NewSHiPMem(4), policy.NewDIP(), policy.NewPeLIFO(),
		policy.NewCounterDBP(), policy.NewUCP(), policy.NewRandom(3), policy.NewHawkeye(),
		core.New(core.DefaultParams(core.VariantGSPZTC)),
		core.New(core.DefaultParams(core.VariantGSPZTCTSE)),
		core.New(core.DefaultParams(core.VariantGSPC)),
	}
	for _, r := range rivals {
		c := cachesim.New(geom, r)
		for _, a := range tr {
			c.Access(a)
		}
		if opt.Stats.Misses > c.Stats.Misses {
			t.Errorf("Belady (%d misses) beaten by %s (%d misses)", opt.Stats.Misses, r.Name(), c.Stats.Misses)
		}
	}
}

// TestTimingAndOfflineAgreeOnVolume: the GPU model must present exactly
// the trace's accesses to its LLC, whatever the interleaving.
func TestTimingAndOfflineAgreeOnVolume(t *testing.T) {
	tr := itTrace(t, 30)
	cfg := gpu.DefaultConfig(itGeom())
	r := gpu.Simulate(tr, cfg, policy.NewDRRIP(2))
	if r.LLC.Accesses != int64(len(tr)) {
		t.Errorf("timing model LLC saw %d accesses, trace has %d", r.LLC.Accesses, len(tr))
	}
	// The interleaved order changes misses only moderately.
	off := cachesim.New(itGeom(), policy.NewDRRIP(2))
	for _, a := range tr {
		off.Access(a)
	}
	lo, hi := off.Stats.Misses*7/10, off.Stats.Misses*13/10
	if r.LLC.Misses < lo || r.LLC.Misses > hi {
		t.Errorf("timing-model misses %d far from offline %d", r.LLC.Misses, off.Stats.Misses)
	}
}

// TestDRAMTrafficMatchesMissesAndWritebacks: every LLC miss fetch and
// dirty writeback must appear in DRAM, and nothing else (MSHR merges may
// reduce reads, never increase them).
func TestDRAMTrafficMatchesMissesAndWritebacks(t *testing.T) {
	tr := itTrace(t, 40)
	cfg := gpu.DefaultConfig(itGeom())
	r := gpu.Simulate(tr, cfg, policy.NewDRRIP(2))
	fills := r.LLC.Misses - r.LLC.Bypasses
	if r.DRAM.Reads > r.LLC.Misses {
		t.Errorf("DRAM reads %d exceed LLC misses %d", r.DRAM.Reads, r.LLC.Misses)
	}
	if r.DRAM.Reads < fills/2 {
		t.Errorf("DRAM reads %d implausibly below fills %d", r.DRAM.Reads, fills)
	}
	if r.DRAM.Writes < r.LLC.Writebacks {
		t.Errorf("DRAM writes %d below LLC writebacks %d", r.DRAM.Writes, r.LLC.Writebacks)
	}
}

// TestUCDNeverAddsDisplayHits: with UCD, display accesses never hit.
func TestUCDNeverAddsDisplayHits(t *testing.T) {
	tr := itTrace(t, 10)
	c := cachesim.New(itGeom(), core.New(core.DefaultParams(core.VariantGSPC)))
	c.SetBypass(stream.Display, true)
	for _, a := range tr {
		c.Access(a)
	}
	if c.Stats.KindHits[stream.Display] != 0 {
		t.Errorf("bypassed display stream recorded %d hits", c.Stats.KindHits[stream.Display])
	}
}

// TestConsumptionAmplification: GSPC's render-target protection must
// materially raise the RT-to-texture consumption rate over DRRIP on a
// render-to-texture heavy frame — the paper's central mechanism.
func TestConsumptionAmplification(t *testing.T) {
	p, _ := workload.ProfileByAbbrev("Civilization")
	tr := trace.GenerateFrame(workload.FrameJob{App: p, Index: 0}, 0.2)
	geom := cachesim.Geometry{SizeBytes: 512 << 10, Ways: 16, BlockSize: 64}

	cd := cachesim.New(geom, policy.NewDRRIP(2))
	td := analysis.Attach(cd)
	for _, a := range tr {
		cd.Access(a)
	}
	cg := cachesim.New(geom, core.New(core.DefaultParams(core.VariantGSPC)))
	cg.SetBypass(stream.Display, true)
	tg := analysis.Attach(cg)
	for _, a := range tr {
		cg.Access(a)
	}
	if tg.RTConsumptionRate() < td.RTConsumptionRate()*1.2 {
		t.Errorf("GSPC consumption %.1f%% does not amplify DRRIP's %.1f%%",
			100*tg.RTConsumptionRate(), 100*td.RTConsumptionRate())
	}
}

// TestReportGeneration: the markdown report must include every table and
// the paper-vs-measured summary.
func TestReportGeneration(t *testing.T) {
	var buf bytes.Buffer
	o := harness.Options{Scale: 0.1, CapacityFactor: 1.5, MaxFramesPerApp: 1, Apps: []string{"Dirt"}}
	if err := harness.WriteReport(&buf, o, []string{"tab1", "fig1"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# EXPERIMENTS", "## tab1", "## fig1", "paper versus measured", "Belady"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("report missing %q", want)
		}
	}
	if err := harness.WriteReport(&buf, o, []string{"bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestPaperClaimsResolvable: every pinned paper claim must reference an
// experiment and column that actually exist (guards against drift when
// tables are renamed).
func TestPaperClaimsResolvable(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range harness.All() {
		ids[e.ID] = true
	}
	for _, c := range harness.PaperClaims() {
		if !ids[c.Experiment] {
			t.Errorf("claim references unknown experiment %s", c.Experiment)
		}
	}
}
