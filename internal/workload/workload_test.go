package workload

import (
	"testing"
)

// Table 1 ground truth from the paper.
var table1 = []struct {
	abbrev  string
	directx int
	w, h    int
}{
	{"3DMarkVAGT1", 10, 1920, 1200},
	{"3DMarkVAGT2", 10, 1920, 1200},
	{"AssnCreed", 10, 1680, 1050},
	{"BioShock", 10, 1920, 1200},
	{"DMC", 10, 1680, 1050},
	{"Civilization", 11, 1920, 1200},
	{"Dirt", 11, 1680, 1050},
	{"HAWX", 11, 1920, 1200},
	{"Heaven", 11, 2560, 1600},
	{"LostPlanet", 11, 1920, 1200},
	{"StalkerCOP", 11, 1680, 1050},
	{"Unigine", 11, 1920, 1200},
}

func TestProfilesMatchTable1(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("profiles = %d, want 12", len(ps))
	}
	for i, want := range table1 {
		p := ps[i]
		if p.Abbrev != want.abbrev {
			t.Errorf("profile %d = %s, want %s", i, p.Abbrev, want.abbrev)
			continue
		}
		if p.DirectX != want.directx {
			t.Errorf("%s DirectX = %d, want %d", p.Abbrev, p.DirectX, want.directx)
		}
		if p.Width != want.w || p.Height != want.h {
			t.Errorf("%s resolution = %dx%d, want %dx%d", p.Abbrev, p.Width, p.Height, want.w, want.h)
		}
	}
}

func TestSuiteHas52Frames(t *testing.T) {
	jobs := Suite()
	if len(jobs) != 52 {
		t.Fatalf("suite frames = %d, want 52", len(jobs))
	}
	perApp := map[string]int{}
	for _, j := range jobs {
		perApp[j.App.Abbrev]++
	}
	for _, p := range Profiles() {
		if perApp[p.Abbrev] != p.Frames {
			t.Errorf("%s frames = %d, want %d", p.Abbrev, perApp[p.Abbrev], p.Frames)
		}
	}
}

func TestProfileByAbbrev(t *testing.T) {
	p, ok := ProfileByAbbrev("AssnCreed")
	if !ok || p.Name != "Assassin's Creed" {
		t.Errorf("lookup failed: %v %v", p, ok)
	}
	if _, ok := ProfileByAbbrev("NoSuchGame"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestJobSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, j := range Suite() {
		s := j.Seed()
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision: %s and %s", prev, j.ID())
		}
		seen[s] = j.ID()
	}
}

func TestJobID(t *testing.T) {
	j := Suite()[0]
	if j.ID() != "3DMarkVAGT1/0" {
		t.Errorf("ID = %q", j.ID())
	}
}

func TestBuildFrameValid(t *testing.T) {
	// Every suite frame must build into a structurally valid pipeline
	// frame at a small scale.
	for _, j := range Suite() {
		f := j.Build(0.1)
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", j.ID(), err)
		}
		if len(f.Passes) < 2 {
			t.Errorf("%s: only %d passes", j.ID(), len(f.Passes))
		}
	}
}

func TestBuildFrameDeterministic(t *testing.T) {
	j := Suite()[10]
	a := j.Build(0.1)
	b := j.Build(0.1)
	if len(a.Passes) != len(b.Passes) || a.Seed != b.Seed {
		t.Fatal("frame construction not deterministic")
	}
	for i := range a.Passes {
		if len(a.Passes[i].Draws) != len(b.Passes[i].Draws) {
			t.Fatalf("pass %d draw counts differ", i)
		}
	}
}

func TestFramesOfAppDiffer(t *testing.T) {
	p := Profiles()[0]
	f0 := p.BuildFrame(0, 0.1)
	f1 := p.BuildFrame(1, 0.1)
	if f0.Seed == f1.Seed {
		t.Error("consecutive frames share a seed")
	}
}

func TestScaleAffectsDimensions(t *testing.T) {
	p := Profiles()[0] // 1920x1200
	small := p.BuildFrame(0, 0.1)
	big := p.BuildFrame(0, 0.25)
	if small.Width >= big.Width {
		t.Errorf("scaling broken: %d vs %d", small.Width, big.Width)
	}
	full := p.BuildFrame(0, 1.0)
	if full.Width != 1920 || full.Height != 1200 {
		t.Errorf("full scale = %dx%d", full.Width, full.Height)
	}
}

func TestScaleDim(t *testing.T) {
	if scaleDim(1920, 0.25) != 480 {
		t.Errorf("scaleDim(1920, .25) = %d", scaleDim(1920, 0.25))
	}
	if v := scaleDim(100, 0.1); v != 64 {
		t.Errorf("minimum dimension not enforced: %d", v)
	}
	if v := scaleDim(1000, 0.101); v%8 != 0 {
		t.Errorf("dimension %d not a multiple of 8", v)
	}
}

func TestDX11GeometryAmplification(t *testing.T) {
	// A DX11 profile at the same nominal MeshTris gets tessellation
	// amplification; compare two frames differing only in DirectX.
	p10 := Profiles()[0] // DX10
	p11 := p10
	p11.DirectX = 11
	f10 := p10.BuildFrame(0, 0.2)
	f11 := p11.BuildFrame(0, 0.2)
	t10 := f10.Passes[len(f10.Passes)-1]
	t11 := f11.Passes[len(f11.Passes)-1]
	_ = t10
	_ = t11
	// Compare mesh sizes through any draw that has a mesh.
	m10 := f10.Passes[0].Draws[0].Mesh.TriCount
	m11 := f11.Passes[0].Draws[0].Mesh.TriCount
	if m11 <= m10 {
		t.Errorf("DX11 tessellation should amplify geometry: %d vs %d", m11, m10)
	}
}

func TestFrameStructure(t *testing.T) {
	// A profile with shadow and post passes must produce render-to-
	// texture structure: at least one pass sampling a dynamic texture.
	j := FrameJob{App: Profiles()[2], Index: 0} // AssnCreed
	f := j.Build(0.15)
	dynamic := 0
	for _, p := range f.Passes {
		if p.SamplesDynamic {
			dynamic++
		}
	}
	if dynamic == 0 {
		t.Error("no pass samples dynamic textures in a render-to-texture heavy profile")
	}
	// The last pass writes the back buffer.
	last := f.Passes[len(f.Passes)-1]
	if last.Target != f.BackBuffer {
		t.Error("final pass does not write the back buffer")
	}
}

func TestGeneratedStreamsPresent(t *testing.T) {
	// Smoke: build and count raw stream presence via the pipeline's own
	// validation path is covered in the pipeline package; here check the
	// profile knobs produce the advertised pass structure.
	for _, p := range Profiles() {
		f := p.BuildFrame(0, 0.1)
		geomPasses := 0
		for _, pass := range f.Passes {
			if pass.Depth != nil && pass.Target != nil && pass.Target.Width == f.Width {
				geomPasses++
			}
		}
		if geomPasses < p.GeomPasses {
			t.Errorf("%s: %d full-res geometry passes, profile wants %d", p.Abbrev, geomPasses, p.GeomPasses)
		}
	}
}

func TestStencilOnlyWhereConfigured(t *testing.T) {
	for _, p := range Profiles() {
		if p.StencilPassFrac > 0 {
			continue
		}
		f := p.BuildFrame(0, 0.1)
		for i, pass := range f.Passes {
			if pass.Stencil != nil {
				t.Errorf("%s pass %d has stencil but profile fraction is 0", p.Abbrev, i)
			}
		}
	}
}
