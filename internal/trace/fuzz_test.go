package trace

import (
	"bytes"
	"testing"

	"gspc/internal/stream"
)

// FuzzRead exercises the trace decoder against arbitrary byte streams:
// it must never panic, and anything it accepts must round-trip.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = Write(&seed, []stream.Access{
		{Addr: 0x1000, Kind: stream.Z, Write: true},
		{Addr: 0x2000, Kind: stream.Texture},
	})
	f.Add(seed.Bytes())
	f.Add([]byte("GSPCTRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		accs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must re-encode to a decodable trace of the
		// same length.
		var buf bytes.Buffer
		if err := Write(&buf, accs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil || len(again) != len(accs) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(again), len(accs))
		}
	})
}
