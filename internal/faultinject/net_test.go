package faultinject

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stormSpec exercises every probabilistic fault kind at once.
var stormSpec = NetSpec{
	DropRate: 0.1, ResetRate: 0.2, TruncateRate: 0.2, TruncateBytes: 8,
	DelayRate: 0.2, Latency: time.Millisecond, Jitter: time.Millisecond,
}

// TestRollerSeededDeterminism: the acceptance property — the same seed
// yields a bit-identical decision sequence, for every fault kind; a
// different seed yields a different storm.
func TestRollerSeededDeterminism(t *testing.T) {
	draw := func(seed int64, spec NetSpec, n int) []NetDecision {
		r := newRoller(seed, true)
		for i := 0; i < n; i++ {
			r.decide(spec)
		}
		return r.decisions()
	}

	a := draw(42, stormSpec, 500)
	b := draw(42, stormSpec, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different decision sequences")
	}
	if reflect.DeepEqual(a, draw(43, stormSpec, 500)) {
		t.Error("different seeds produced identical 500-decision sequences")
	}

	// Every kind must actually occur in a 500-decision storm.
	seen := map[NetDecision]bool{}
	for _, d := range a {
		seen[d] = true
	}
	for _, want := range []NetDecision{NetPass, NetDelay, NetDrop, NetReset, NetTruncate} {
		if !seen[want] {
			t.Errorf("decision kind %s never drawn in 500 decisions", want)
		}
	}
}

// TestRollerOutcomeParameters: not just the kinds — the drawn
// parameters (delay durations) are seed-deterministic too.
func TestRollerOutcomeParameters(t *testing.T) {
	spec := NetSpec{DelayRate: 1, Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
	draw := func(seed int64) []time.Duration {
		r := newRoller(seed, false)
		out := make([]time.Duration, 100)
		for i := range out {
			o := r.decide(spec)
			if o.kind != NetDelay {
				t.Fatalf("DelayRate=1 drew %s", o.kind)
			}
			out[i] = o.delay
		}
		return out
	}
	a, b := draw(7), draw(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different delay durations")
	}
	varied := false
	for _, d := range a {
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("delay %v outside Latency±Jitter", d)
		}
		if d != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never varied the delay")
	}
}

// TestRollerPartitionOverridesRates: a partition decides every exchange
// regardless of the probabilistic rates.
func TestRollerPartitionOverridesRates(t *testing.T) {
	spec := stormSpec
	spec.Partition = PartitionRefuse
	r := newRoller(1, true)
	for i := 0; i < 50; i++ {
		if o := r.decide(spec); o.kind != NetRefused {
			t.Fatalf("partitioned link drew %s", o.kind)
		}
	}
	spec.Partition = PartitionBlackhole
	if o := r.decide(spec); o.kind != NetBlackhole {
		t.Fatalf("blackhole partition drew %s", o.kind)
	}
	if c := r.snapshot(); c.Partitioned != 51 {
		t.Errorf("Partitioned = %d, want 51", c.Partitioned)
	}
}

func newEchoServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestTransportFaultKinds drives each fault kind through the
// RoundTripper against a real server and asserts the caller-visible
// shape: refusals and resets error immediately, drops hang until the
// deadline with a timeout-classified error, truncation tears the body
// mid-read, delays add latency, passes are untouched.
func TestTransportFaultKinds(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef0123456789abcdef" // 48 bytes
	ts := newEchoServer(t, body)

	t.Run("refused", func(t *testing.T) {
		tr := NewTransport(1, NetSpec{Partition: PartitionRefuse})
		_, err := (&http.Client{Transport: tr}).Get(ts.URL)
		var ne *NetError
		if !errors.As(err, &ne) || ne.Kind != NetRefused {
			t.Fatalf("err = %v, want injected partition-refused", err)
		}
		if ne.Timeout() {
			t.Error("refusal classified as timeout")
		}
	})

	t.Run("blackhole-times-out", func(t *testing.T) {
		tr := NewTransport(1, NetSpec{Partition: PartitionBlackhole})
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
		start := time.Now()
		_, err := (&http.Client{Transport: tr}).Do(req)
		if time.Since(start) < 40*time.Millisecond {
			t.Error("blackhole returned before the deadline")
		}
		var ne *NetError
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err = %v, want timeout-classified injected fault", err)
		}
	})

	t.Run("reset", func(t *testing.T) {
		tr := NewTransport(1, NetSpec{ResetRate: 1})
		_, err := (&http.Client{Transport: tr}).Get(ts.URL)
		var ne *NetError
		if !errors.As(err, &ne) || ne.Kind != NetReset {
			t.Fatalf("err = %v, want injected reset", err)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		tr := NewTransport(1, NetSpec{TruncateRate: 1, TruncateBytes: 8})
		resp, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err == nil {
			t.Fatalf("truncated body read succeeded with %d bytes", len(b))
		}
		if len(b) > 8 {
			t.Errorf("read %d bytes past the truncation point", len(b))
		}
		if string(b) != body[:len(b)] {
			t.Errorf("delivered prefix corrupted: %q", b)
		}
	})

	t.Run("delay", func(t *testing.T) {
		tr := NewTransport(1, NetSpec{DelayRate: 1, Latency: 60 * time.Millisecond})
		start := time.Now()
		resp, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 60*time.Millisecond {
			t.Errorf("exchange took %v, want >= 60ms injected latency", d)
		}
	})

	t.Run("pass", func(t *testing.T) {
		tr := NewTransport(1, NetSpec{})
		resp, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if string(b) != body {
			t.Errorf("clean link corrupted the body: %q", b)
		}
	})

	t.Run("bandwidth", func(t *testing.T) {
		// 480 bytes/sec over a 48-byte body ≈ 100ms.
		tr := NewTransport(1, NetSpec{BandwidthBps: 480})
		start := time.Now()
		resp, err := (&http.Client{Transport: tr}).Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil || string(b) != body {
			t.Fatalf("throttled body corrupted: %q err=%v", b, err)
		}
		if d := time.Since(start); d < 50*time.Millisecond {
			t.Errorf("48 bytes at 480 B/s took %v, want >= 50ms", d)
		}
	})
}

// TestTransportAsymmetricHostSpec: a per-host override partitions one
// link while the default keeps the other clean — the asymmetric
// (coordinator, member)-pair shape.
func TestTransportAsymmetricHostSpec(t *testing.T) {
	a := newEchoServer(t, "alpha")
	b := newEchoServer(t, "beta")
	hostOf := func(u string) string { return strings.TrimPrefix(u, "http://") }

	tr := NewTransport(9, NetSpec{})
	tr.SetHostSpec(hostOf(a.URL), NetSpec{Partition: PartitionRefuse})
	client := &http.Client{Transport: tr}

	if _, err := client.Get(a.URL); err == nil {
		t.Fatal("partitioned host served a request")
	}
	resp, err := client.Get(b.URL)
	if err != nil {
		t.Fatalf("clean host failed: %v", err)
	}
	resp.Body.Close()

	// Live reconfiguration: clearing the override heals the link.
	tr.SetHostSpec(hostOf(a.URL), NetSpec{})
	resp, err = client.Get(a.URL)
	if err != nil {
		t.Fatalf("healed host still failing: %v", err)
	}
	resp.Body.Close()
}

// TestTransportDeterministicStorm: two identically-seeded transports
// fed identical traffic log identical decisions.
func TestTransportDeterministicStorm(t *testing.T) {
	ts := newEchoServer(t, "payload")
	run := func(seed int64) []NetDecision {
		tr := NewTransport(seed, NetSpec{ResetRate: 0.3, TruncateRate: 0.3, TruncateBytes: 2}).Record()
		client := &http.Client{Transport: tr}
		for i := 0; i < 60; i++ {
			resp, err := client.Get(ts.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return tr.Decisions()
	}
	if !reflect.DeepEqual(run(1234), run(1234)) {
		t.Fatal("identically seeded transports diverged")
	}
}

// dialProxy opens a raw TCP conn to the proxy and performs one
// HTTP/1.0-ish exchange, returning the response bytes and read error.
func dialProxy(t *testing.T, addr string, timeout time.Duration) ([]byte, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	io.WriteString(conn, "GET / HTTP/1.0\r\nHost: x\r\n\r\n")
	return io.ReadAll(conn)
}

func TestProxyPassesCleanTraffic(t *testing.T) {
	ts := newEchoServer(t, "clean payload")
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), 1, NetSpec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b, err := dialProxy(t, p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("clean proxy exchange failed: %v", err)
	}
	if !strings.Contains(string(b), "clean payload") {
		t.Errorf("body missing payload: %q", b)
	}
	if c := p.Counts(); c.Passes != 1 {
		t.Errorf("passes = %d, want 1", c.Passes)
	}
}

func TestProxyPartitionRefuse(t *testing.T) {
	ts := newEchoServer(t, "x")
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), 1, NetSpec{Partition: PartitionRefuse})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b, _ := dialProxy(t, p.Addr(), time.Second)
	if len(b) != 0 {
		t.Errorf("partitioned proxy answered: %q", b)
	}

	// Live heal: clearing the partition restores service on the same
	// proxy address.
	p.SetSpec(NetSpec{})
	b, err = dialProxy(t, p.Addr(), 2*time.Second)
	if err != nil || !strings.Contains(string(b), "200 OK") {
		t.Errorf("healed proxy exchange: %q err=%v", b, err)
	}
}

func TestProxyBlackholeHangsUntilClientDeadline(t *testing.T) {
	ts := newEchoServer(t, "x")
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), 1, NetSpec{Partition: PartitionBlackhole})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	b, rerr := dialProxy(t, p.Addr(), 150*time.Millisecond)
	if len(b) != 0 {
		t.Errorf("blackholed proxy answered: %q", b)
	}
	if rerr == nil {
		t.Error("blackholed read returned no error")
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("blackhole returned after %v, want to hang to the deadline", d)
	}
}

func TestProxySetSpecSeversEstablishedConns(t *testing.T) {
	ts := newEchoServer(t, "x")
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), 1, NetSpec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Let the proxy accept and register the conn before the flip.
	time.Sleep(50 * time.Millisecond)

	p.SetSpec(NetSpec{Partition: PartitionRefuse})
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("established conn survived a partition flip")
	}
}

func TestProxyTruncatesResponses(t *testing.T) {
	body := strings.Repeat("z", 4096)
	ts := newEchoServer(t, body)
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), 1,
		NetSpec{TruncateRate: 1, TruncateBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b, _ := dialProxy(t, p.Addr(), 2*time.Second)
	if len(b) == 0 || len(b) > 100 {
		t.Errorf("truncated exchange delivered %d bytes, want 1..100", len(b))
	}
}

func TestProxyDeterministicDecisions(t *testing.T) {
	ts := newEchoServer(t, "d")
	spec := NetSpec{ResetRate: 0.4, DelayRate: 0.3, Latency: time.Millisecond}
	run := func(seed int64) []NetDecision {
		p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), seed, spec)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		p.Record()
		for i := 0; i < 40; i++ {
			dialProxy(t, p.Addr(), 500*time.Millisecond)
		}
		return p.Decisions()
	}
	if !reflect.DeepEqual(run(77), run(77)) {
		t.Fatal("identically seeded proxies diverged")
	}
}
