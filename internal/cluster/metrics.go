package cluster

import (
	"time"

	"gspc/internal/telemetry"
)

// Metrics is the coordinator's counter snapshot, served as JSON at
// /metricsz and rendered to Prometheus text at /metrics.
type Metrics struct {
	Coordinator   string  `json:"coordinator"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Submits     int64 `json:"submits"`
	StatusReads int64 `json:"status_reads"`
	// Coalesced counts synchronous submissions answered by replaying
	// another connection's in-flight forward of the same key.
	Coalesced int64 `json:"coalesced"`
	// Reroutes counts forward attempts that skipped past the key's
	// first-choice owner (dead, draining, or mid-forward failure).
	Reroutes int64 `json:"reroutes"`
	// Rebalances counts ring rebuilds from membership/routability change.
	Rebalances        int64 `json:"rebalances"`
	Replications      int64 `json:"replications"`
	ReplicationErrors int64 `json:"replication_errors"`
	// ReplicationRetries counts replica installs retried after a
	// transient failure.
	ReplicationRetries int64 `json:"replication_retries"`
	// CacheProbeHits counts requests served from a follower's replica
	// while the key's owner was saturated.
	CacheProbeHits int64 `json:"cache_probe_hits"`
	NoMemberErrors int64 `json:"no_member_errors"`
	// ForwardTimeouts / ForwardRefusals split transport-failed forwards
	// by strike class (timeout-flavored vs refusal-flavored).
	ForwardTimeouts int64 `json:"forward_timeouts"`
	ForwardRefusals int64 `json:"forward_refusals"`
	// InflightRejects counts forward attempts refused because the
	// member's MaxInflight bound was exhausted.
	InflightRejects int64 `json:"inflight_rejects"`
	// Hedges counts slow-owner forwards that triggered replica cache
	// probes; HedgeWins counts those answered by a replica first.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// RingGeneration is the routing-ring rebuild counter: every
	// membership/routability change swaps in a new generation.
	RingGeneration int64 `json:"ring_generation"`
	// ClusterEvents counts timeline events ever recorded
	// (/v1/cluster/events), including any replayed from disk.
	ClusterEvents int64 `json:"cluster_events"`
	// TracesStitched counts /v1/runs/{id}/trace responses merged from
	// coordinator + member spans; TraceFallbacks counts reads that
	// relayed the member's document unstitched (registry miss or an
	// uninterpretable member trace).
	TracesStitched int64 `json:"traces_stitched"`
	TraceFallbacks int64 `json:"trace_fallbacks"`
	// FederateScrapes / FederateErrors count member /metrics scrapes for
	// the federation surface.
	FederateScrapes int64 `json:"federate_scrapes"`
	FederateErrors  int64 `json:"federate_errors"`

	Forwards       map[string]int64 `json:"forwards_by_node"`
	ForwardErrors  map[string]int64 `json:"forward_errors_by_node,omitempty"`
	ReplicasByNode map[string]int64 `json:"replicas_by_node,omitempty"`

	RingNodes []string       `json:"ring_nodes"`
	Members   []MemberStatus `json:"members"`
}

// Metrics snapshots the coordinator counters and membership.
func (c *Coordinator) Metrics() Metrics {
	return Metrics{
		Coordinator:   c.cfg.Name,
		UptimeSeconds: time.Since(c.start).Seconds(),

		Submits:            c.submits.Load(),
		StatusReads:        c.statusReads.Load(),
		Coalesced:          c.coalesced.Load(),
		Reroutes:           c.reroutes.Load(),
		Rebalances:         c.rebalances.Load(),
		Replications:       c.replications.Load(),
		ReplicationErrors:  c.replicationErrs.Load(),
		ReplicationRetries: c.replicationRtry.Load(),
		CacheProbeHits:     c.cacheProbeHits.Load(),
		NoMemberErrors:     c.noMemberErrs.Load(),
		ForwardTimeouts:    c.forwardTimeouts.Load(),
		ForwardRefusals:    c.forwardRefusals.Load(),
		InflightRejects:    c.inflightRejects.Load(),
		Hedges:             c.hedges.Load(),
		HedgeWins:          c.hedgeWins.Load(),
		RingGeneration:     c.ringGeneration(),
		ClusterEvents:      c.events.Total(),
		TracesStitched:     c.tracesStitched.Load(),
		TraceFallbacks:     c.traceFallbacks.Load(),
		FederateScrapes:    c.federateScrapes.Load(),
		FederateErrors:     c.federateErrs.Load(),

		Forwards:       c.forwards.Snapshot(),
		ForwardErrors:  c.forwardErrors.Snapshot(),
		ReplicasByNode: c.replicasByNode.Snapshot(),

		RingNodes: c.currentRing().Nodes(),
		Members:   c.Members(),
	}
}

// PromExposition renders the coordinator state in the Prometheus text
// format (GET /metrics). Label cardinality is bounded by the fixed
// member set and the four member states.
func (c *Coordinator) PromExposition() []byte {
	m := c.Metrics()

	states := map[string]int64{
		string(StateAlive): 0, string(StateSuspect): 0,
		string(StateDead): 0, string(StateDraining): 0,
	}
	for _, ms := range m.Members {
		states[string(ms.State)]++
	}

	var x telemetry.Exposition
	x.Gauge("gspc_cluster_uptime_seconds", "Seconds since the coordinator started.", m.UptimeSeconds)
	x.Counter("gspc_cluster_submits_total", "Run submissions accepted for routing.", float64(m.Submits))
	x.Counter("gspc_cluster_status_reads_total", "Run status/trace reads forwarded.", float64(m.StatusReads))
	x.Counter("gspc_cluster_coalesced_total", "Submissions coalesced onto an identical in-flight forward.", float64(m.Coalesced))
	x.Counter("gspc_cluster_reroutes_total", "Forward attempts routed past the first-choice owner.", float64(m.Reroutes))
	x.Counter("gspc_cluster_rebalances_total", "Ring rebuilds from membership or routability change.", float64(m.Rebalances))
	x.Counter("gspc_cluster_replications_total", "Results replicated onto ring successors.", float64(m.Replications))
	x.Counter("gspc_cluster_replication_errors_total", "Failed replica installs.", float64(m.ReplicationErrors))
	x.Counter("gspc_cluster_replication_retries_total", "Replica installs retried after a transient failure.", float64(m.ReplicationRetries))
	x.Counter("gspc_cluster_cache_probe_hits_total", "Requests served from a follower replica while the owner was saturated.", float64(m.CacheProbeHits))
	x.Counter("gspc_cluster_no_member_errors_total", "Requests failed because no member was routable.", float64(m.NoMemberErrors))
	x.Counter("gspc_cluster_forward_timeouts_total", "Transport-failed forwards classified as timeout-flavored.", float64(m.ForwardTimeouts))
	x.Counter("gspc_cluster_forward_refusals_total", "Transport-failed forwards classified as refusal-flavored.", float64(m.ForwardRefusals))
	x.Counter("gspc_cluster_inflight_rejects_total", "Forward attempts refused at a member's in-flight bound.", float64(m.InflightRejects))
	x.Counter("gspc_cluster_hedges_total", "Slow-owner forwards that triggered replica cache probes.", float64(m.Hedges))
	x.Counter("gspc_cluster_hedge_wins_total", "Hedged forwards answered by a replica before the owner.", float64(m.HedgeWins))
	x.CounterVec("gspc_cluster_forwards_total", "Forwarded requests by member.", "node", m.Forwards)
	x.CounterVec("gspc_cluster_forward_errors_total", "Transport-failed forwards by member.", "node", m.ForwardErrors)
	x.CounterVec("gspc_cluster_replicas_installed_total", "Replicas installed by follower member.", "node", m.ReplicasByNode)
	x.GaugeVec("gspc_cluster_members", "Members by state.", "state", states)
	// Each member's last-reported memory-ladder rung (0 healthy … 4 shed),
	// so dashboards see which node the coordinator is routing around and
	// why. Members without a governor report 0.
	memRungs := make(map[string]int64, len(m.Members))
	for _, ms := range m.Members {
		memRungs[ms.Name] = int64(ms.ReadyInfo.MemRungLevel)
	}
	x.GaugeVec("gspc_cluster_member_mem_rung", "Member memory-ladder rung from its last /readyz report (0 healthy .. 4 shed).", "member", memRungs)
	x.Gauge("gspc_cluster_ring_nodes", "Members currently on the routing ring.", float64(len(m.RingNodes)))
	x.Gauge("gspc_cluster_ring_generation", "Routing ring generation, bumped on every rebuild.", float64(m.RingGeneration))
	x.Counter("gspc_cluster_events_total", "Cluster timeline events recorded (see /v1/cluster/events).", float64(m.ClusterEvents))
	x.Counter("gspc_cluster_traces_stitched_total", "Run traces served as a stitched coordinator+member document.", float64(m.TracesStitched))
	x.Counter("gspc_cluster_trace_fallbacks_total", "Run trace reads relayed unstitched (no retained coordinator run, or member trace uninterpretable).", float64(m.TraceFallbacks))
	x.Counter("gspc_cluster_federate_scrapes_total", "Member /metrics scrapes for the federation surface.", float64(m.FederateScrapes))
	x.Counter("gspc_cluster_federate_errors_total", "Failed member /metrics scrapes.", float64(m.FederateErrors))
	// The forward-duration histogram is labeled by outcome class; the
	// class set is closed at construction so cardinality stays fixed.
	durations := make(map[string]telemetry.HistogramSnapshot, len(c.fwdHist))
	for class, h := range c.fwdHist {
		durations[class] = h.Snapshot()
	}
	x.HistogramVec("gspc_cluster_forward_duration_seconds",
		"Forward exchange latency by outcome class.", "class", durations)
	return x.Bytes()
}

// ringGeneration reads the current ring generation.
func (c *Coordinator) ringGeneration() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// FederatedExposition merges the latest member /metrics scrapes into one
// exposition, every series labeled with its node (GET /metrics/federate).
// Scrape health rides along as gspc_federate_* meta-families so a
// dashboard can tell a silent member from a zero-valued one.
func (c *Coordinator) FederatedExposition() []byte {
	scrapes := make([]telemetry.FederatedScrape, 0, len(c.names))
	ages := make(map[string]int64, len(c.names))
	oks := make(map[string]int64, len(c.names))
	for _, name := range c.names {
		body, at, errStr := c.members[name].scrapeState()
		if len(body) > 0 {
			scrapes = append(scrapes, telemetry.FederatedScrape{Node: name, Body: body})
		}
		if !at.IsZero() {
			ages[name] = int64(time.Since(at).Seconds())
		}
		if errStr == "" && len(body) > 0 {
			oks[name] = 1
		} else {
			oks[name] = 0
		}
	}
	out := telemetry.Federate(scrapes)
	var x telemetry.Exposition
	x.GaugeVec("gspc_federate_scrape_ok", "Whether the last /metrics scrape of the member succeeded.", "node", oks)
	x.GaugeVec("gspc_federate_scrape_age_seconds", "Seconds since the member's metrics were last scraped.", "node", ages)
	return append(out, x.Bytes()...)
}
