package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// SHiP-mem parameters from Section 5.1 of the paper: the physical address
// space is divided into contiguous 16 KB regions; a 14-bit region
// identifier (address bits [27:14]) indexes a 16K-entry table of 3-bit
// saturating counters per LLC bank.
const (
	shipRegionShift = 14
	shipTableBits   = 14
	shipTableSize   = 1 << shipTableBits
	shipCounterMax  = 7
	// shipCounterInit biases new regions toward intermediate re-reference
	// (insert at RRPV max-1) until evidence of zero reuse accumulates.
	shipCounterInit = 1
)

// SHiPMem is memory-region signature-based hit prediction [50] as
// evaluated in the paper. Each block remembers its region signature and
// whether it has been reused; hits increment the region counter, dead
// evictions decrement it, and fills of regions whose counter is zero are
// inserted with a distant re-reference prediction.
type SHiPMem struct {
	rripBase
	banks   int
	sets    int
	shct    [][]uint8 // [bank][signature]
	sig     []uint16  // per block
	reused  []bool    // per block
	present []bool    // per block: filled under this policy
}

var _ cachesim.Policy = (*SHiPMem)(nil)

// NewSHiPMem returns a SHiP-mem policy with a 2-bit RRPV and the given
// number of LLC banks (the paper's LLC has 4 banks of 2 MB).
func NewSHiPMem(banks int) *SHiPMem {
	if banks < 1 {
		banks = 1
	}
	p := &SHiPMem{banks: banks}
	p.init(2)
	return p
}

// Name implements cachesim.Policy.
func (p *SHiPMem) Name() string { return "SHiP-mem" }

// Reset implements cachesim.Policy.
func (p *SHiPMem) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.sets = sets
	p.shct = make([][]uint8, p.banks)
	for b := range p.shct {
		t := make([]uint8, shipTableSize)
		for i := range t {
			t[i] = shipCounterInit
		}
		p.shct[b] = t
	}
	n := sets * ways
	p.sig = make([]uint16, n)
	p.reused = make([]bool, n)
	p.present = make([]bool, n)
}

func (p *SHiPMem) bank(set int) int {
	per := p.sets / p.banks
	if per == 0 {
		return 0
	}
	b := set / per
	if b >= p.banks {
		b = p.banks - 1
	}
	return b
}

func signature(addr uint64) uint16 {
	return uint16((addr >> shipRegionShift) & (shipTableSize - 1))
}

// Hit implements cachesim.Policy.
func (p *SHiPMem) Hit(set, way int, a stream.Access) {
	p.promote(set, way)
	i := set*p.ways + way
	if p.present[i] {
		p.reused[i] = true
		t := p.shct[p.bank(set)]
		if t[p.sig[i]] < shipCounterMax {
			t[p.sig[i]]++
		}
	}
}

// Fill implements cachesim.Policy.
func (p *SHiPMem) Fill(set, way int, a stream.Access) {
	sig := signature(a.Addr)
	i := set*p.ways + way
	p.sig[i] = sig
	p.reused[i] = false
	p.present[i] = true
	v := p.max - 1
	if p.shct[p.bank(set)][sig] == 0 {
		v = p.max
	}
	p.insert(set, way, v, a.Kind)
}

// Victim implements cachesim.Policy.
func (p *SHiPMem) Victim(set int, a stream.Access) int { return p.victim(set) }

// Evict implements cachesim.Policy.
func (p *SHiPMem) Evict(set, way int) {
	i := set*p.ways + way
	if p.present[i] && !p.reused[i] {
		t := p.shct[p.bank(set)]
		if t[p.sig[i]] > 0 {
			t[p.sig[i]]--
		}
	}
	p.present[i] = false
	p.rrpv[i] = p.max
}

// CounterFor exposes the learned counter for an address, for tests.
func (p *SHiPMem) CounterFor(set int, addr uint64) uint8 {
	return p.shct[p.bank(set)][signature(addr)]
}
