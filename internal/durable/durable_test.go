package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func silentOptions() Options {
	return Options{Fsync: true, SchemaVersion: 1, Logf: func(string, ...any) {}}
}

func rec(t RecordType, id string, seq int64) Record {
	return Record{Type: t, ID: id, Seq: seq, Key: "key-" + id, Experiment: "fig12"}
}

// TestRoundTrip journals a full job lifecycle, reopens the store, and
// checks the reduced state.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir, silentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 0 || st.NextID != 0 {
		t.Fatalf("fresh store not empty: %+v", st)
	}
	body := json.RawMessage(`{"experiment":"fig12","schema_version":1}`)
	must := func(r Record) {
		t.Helper()
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sub := rec(RecSubmit, "run-000001", 1)
	sub.Data = json.RawMessage(`{"experiment":"fig12"}`)
	must(sub)
	must(rec(RecStart, "run-000001", 0))
	done := rec(RecDone, "run-000001", 0)
	done.Data = body
	must(done)
	sub2 := rec(RecSubmit, "run-000002", 2)
	must(sub2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2, err := Open(dir, silentOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st2.NextID != 2 {
		t.Fatalf("NextID = %d, want 2", st2.NextID)
	}
	j1 := st2.Jobs["run-000001"]
	if j1 == nil || j1.Status != JobDone || string(j1.Result) != string(body) {
		t.Fatalf("job 1 = %+v", j1)
	}
	if j2 := st2.Jobs["run-000002"]; j2 == nil || j2.Status != JobQueued {
		t.Fatalf("job 2 = %+v", j2)
	}
	if len(st2.Cache) != 1 || st2.Cache[0].Key != "key-run-000001" {
		t.Fatalf("cache = %+v", st2.Cache)
	}
	if lg, ok := st2.LastGood["fig12"]; !ok || lg.RunID != "run-000001" {
		t.Fatalf("lastGood = %+v", st2.LastGood)
	}
	if got := s2.Stats().ReplayedRecords; got != 4 {
		t.Fatalf("replayed %d records, want 4", got)
	}
	if order := st2.JobsBySeq(); len(order) != 2 || order[0].ID != "run-000001" {
		t.Fatalf("order = %v", order)
	}
}

// TestTornTailTruncated appends records, then chops the journal at
// every byte boundary inside the final record: recovery must keep the
// intact prefix, truncate the tear, and stay appendable.
func TestTornTailTruncated(t *testing.T) {
	base := t.TempDir()
	// Build a reference journal.
	refDir := filepath.Join(base, "ref")
	s, _, err := Open(refDir, silentOptions())
	if err != nil {
		t.Fatal(err)
	}
	var goodOffsets []int64
	for i := 1; i <= 3; i++ {
		if err := s.Append(rec(RecSubmit, fmt.Sprintf("run-%06d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
		goodOffsets = append(goodOffsets, s.Stats().JournalBytes)
	}
	s.Close()
	raw, err := os.ReadFile(filepath.Join(refDir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	prevGood := func(n int64) int {
		k := 0
		for _, off := range goodOffsets {
			if off <= n {
				k++
			}
		}
		return k
	}
	for cut := int64(0); cut <= int64(len(raw)); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut-%04d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, st, err := Open(dir, silentOptions())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := prevGood(cut)
		if len(st.Jobs) != want {
			t.Fatalf("cut %d: recovered %d jobs, want %d", cut, len(st.Jobs), want)
		}
		// The journal must be appendable after repair.
		if err := s2.Append(rec(RecSubmit, "run-999999", 999999)); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		s2.Close()
		s3, st3, err := Open(dir, silentOptions())
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(st3.Jobs) != want+1 {
			t.Fatalf("cut %d: after repair+append recovered %d jobs, want %d", cut, len(st3.Jobs), want+1)
		}
		s3.Close()
	}
}

// TestCorruptSnapshotQuarantined writes garbage where the snapshot
// lives; Open must sideline it to *.corrupt and start from the journal
// alone.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, silentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(RecSubmit, "run-000001", 1)); err != nil {
		t.Fatal(err)
	}
	st := NewState(1)
	st.NextID = 1
	st.Apply(rec(RecSubmit, "run-000001", 1))
	if err := s.Compact(st); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snap := filepath.Join(dir, snapshotName)
	if err := os.WriteFile(snap, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, st2, err := Open(dir, silentOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().SnapshotQuarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", s2.Stats().SnapshotQuarantined)
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Fatalf("expected quarantined file: %v", err)
	}
	// Journal was compacted away, so the state is empty — but boot
	// succeeded, which is the contract.
	if len(st2.Jobs) != 0 {
		t.Fatalf("jobs = %+v", st2.Jobs)
	}
}

// TestSchemaMismatchQuarantined: a snapshot from a different payload
// schema version must not be trusted.
func TestSchemaMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, silentOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(1)
	st.Apply(rec(RecSubmit, "run-000001", 1))
	if err := s.Compact(st); err != nil {
		t.Fatal(err)
	}
	s.Close()

	opt := silentOptions()
	opt.SchemaVersion = 2
	s2, st2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.SnapshotLoaded || st.SnapshotQuarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st2.Jobs) != 0 {
		t.Fatalf("mismatched snapshot was trusted: %+v", st2.Jobs)
	}
}

// TestCompactionResetsJournal: after Compact, the journal is empty and
// the snapshot alone reproduces the state.
func TestCompactionResetsJournal(t *testing.T) {
	dir := t.TempDir()
	opt := silentOptions()
	opt.SnapshotEvery = 2
	s, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(1)
	for i := 1; i <= 2; i++ {
		r := rec(RecSubmit, fmt.Sprintf("run-%06d", i), int64(i))
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		st.Apply(r)
	}
	if !s.CompactionDue() {
		t.Fatal("compaction not due after SnapshotEvery appends")
	}
	if err := s.Compact(st); err != nil {
		t.Fatal(err)
	}
	if s.CompactionDue() {
		t.Fatal("compaction still due after Compact")
	}
	if got := s.Stats().JournalBytes; got != 0 {
		t.Fatalf("journal bytes after compaction = %d", got)
	}
	s.Close()

	s2, st2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Stats().SnapshotLoaded {
		t.Fatal("snapshot not loaded")
	}
	if len(st2.Jobs) != 2 || st2.NextID != 2 {
		t.Fatalf("recovered %d jobs nextID %d", len(st2.Jobs), st2.NextID)
	}
}

// TestApplyIdempotent replays the same terminal record twice (the
// compaction-crash window) and expects identical state.
func TestApplyIdempotent(t *testing.T) {
	st := NewState(1)
	sub := rec(RecSubmit, "run-000001", 1)
	done := rec(RecDone, "run-000001", 0)
	done.Data = json.RawMessage(`{"x":1}`)
	for i := 0; i < 2; i++ {
		st.Apply(sub)
		st.Apply(done)
	}
	if len(st.Jobs) != 1 || len(st.Cache) != 1 || st.Jobs["run-000001"].Status != JobDone {
		t.Fatalf("state after double replay: %+v", st)
	}
}

// TestSnapshotEncodeDecode round-trips the container format and
// rejects tampering.
func TestSnapshotEncodeDecode(t *testing.T) {
	st := NewState(7)
	st.NextID = 42
	st.Apply(rec(RecSubmit, "run-000042", 42))
	buf, err := encodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NextID != 42 || back.SchemaVersion != 7 || len(back.Jobs) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := decodeSnapshot(bad); err == nil {
		t.Fatal("tampered snapshot decoded")
	}
	// Truncations at every boundary must error, not panic.
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodeSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) decoded", cut)
		}
	}
}
