package core_test

import (
	"fmt"

	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/stream"
)

// Example shows how the GSPC policy learns reuse probabilities from its
// sample sets and applies them to insertions elsewhere: after a phase of
// dead texture fills, new texture blocks are inserted with the distant
// RRPV while render targets stay fully protected.
func Example() {
	g := core.New(core.DefaultParams(core.VariantGSPC))
	geom := cachesim.Geometry{SizeBytes: 512 * 64 * 16, Ways: 16, BlockSize: 64}
	c := cachesim.New(geom, g)
	c.SetBypass(stream.Display, true) // GSPC+UCD

	// A streaming texture phase: blocks are filled and never reused.
	for i := 0; i < 200000; i++ {
		c.Access(stream.Access{Addr: uint64(i) * 64, Kind: stream.Texture})
	}

	in := g.Insertions
	fmt.Printf("texture fills inserted distant: %v\n", in.TexDistant > in.TexZero)
	fmt.Printf("storage overhead under 0.5%%: %v\n",
		float64(g.StorageOverheadBits(geom))/float64(geom.SizeBytes*8) < 0.005)
	// Output:
	// texture fills inserted distant: true
	// storage overhead under 0.5%: true
}
