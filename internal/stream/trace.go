package stream

// Source is a read-only positional view of an access trace. Both the
// packed Trace and a plain []Access (via Slice) implement it, so every
// replay loop in the repository — the offline simulator, Belady
// preprocessing, and the GPU timing model — can consume either
// representation through one seam.
//
// At(i) must return the access at trace position i with Seq set to the
// position (the invariant every generated trace already satisfies),
// which is what Belady's OPT keys its lookahead on.
type Source interface {
	Len() int
	At(i int) Access
}

// Slice adapts a []Access to the Source interface. At trusts the stored
// Seq fields, so a slice whose Seq was assigned in trace order behaves
// identically to the packed form.
type Slice []Access

// Len implements Source.
func (s Slice) Len() int { return len(s) }

// At implements Source.
func (s Slice) At(i int) Access { return s[i] }

// Window is a positional view of the record range [Lo, Hi) of a Source,
// used by interval-sampled timing runs to simulate one representative
// window of a frame trace. At(i) preserves the underlying source's
// global sequence numbers (it returns src.At(Lo+i) unchanged), so
// consumers that key on Seq see the same values a full replay would.
type Window struct {
	Src    Source
	Lo, Hi int
}

// NewWindow returns the [lo, hi) view of src, clamped to its bounds.
func NewWindow(src Source, lo, hi int) Window {
	if lo < 0 {
		lo = 0
	}
	if n := src.Len(); hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return Window{Src: src, Lo: lo, Hi: hi}
}

// Len implements Source.
func (w Window) Len() int { return w.Hi - w.Lo }

// At implements Source.
func (w Window) At(i int) Access { return w.Src.At(w.Lo + i) }

// traceRecordBytes is the packed per-record footprint: an 8-byte address
// plus a 1-byte meta (kind + write flag), mirroring the on-disk
// container format of internal/trace. A stream.Access costs 24 bytes
// (address, explicit Seq, padded flags), so packing cuts trace memory
// about 2.7x.
const traceRecordBytes = 9

// RecordBytes is the packed per-record footprint, exported so admission
// control can estimate a request's in-flight trace memory as
// EstimateAccesses × RecordBytes before any trace is synthesized.
const RecordBytes = traceRecordBytes

// Trace is a packed access trace: structure-of-arrays with one uint64
// address and one meta byte per record, and Seq implicit in the record
// index. It is append-only while being built and safe for any number of
// concurrent readers once built — the shared frame-trace cache hands the
// same *Trace to every experiment replaying that frame.
type Trace struct {
	addrs []uint64
	meta  []uint8
}

// metaWrite is the write-flag bit of a packed meta byte; the low seven
// bits carry the stream kind, exactly as in the on-disk format.
const metaWrite = 0x80

// PackMeta packs a kind and write flag into a trace meta byte.
func PackMeta(k Kind, write bool) uint8 {
	m := uint8(k) & 0x7f
	if write {
		m |= metaWrite
	}
	return m
}

// UnpackMeta splits a trace meta byte into its kind and write flag.
func UnpackMeta(m uint8) (Kind, bool) {
	return Kind(m & 0x7f), m&metaWrite != 0
}

// NewTrace returns an empty packed trace with room for capacity records.
func NewTrace(capacity int) *Trace {
	if capacity < 0 {
		capacity = 0
	}
	return &Trace{
		addrs: make([]uint64, 0, capacity),
		meta:  make([]uint8, 0, capacity),
	}
}

// Pack converts a []Access to the packed representation. Seq fields are
// discarded: the packed trace's positions are its sequence numbers.
func Pack(accs []Access) *Trace {
	t := NewTrace(len(accs))
	for _, a := range accs {
		t.Append(a)
	}
	return t
}

// Len implements Source.
func (t *Trace) Len() int { return len(t.addrs) }

// At implements Source: the access at position i, with Seq = i.
func (t *Trace) At(i int) Access {
	k, w := UnpackMeta(t.meta[i])
	return Access{Addr: t.addrs[i], Seq: int64(i), Kind: k, Write: w}
}

// Addr returns the byte address of record i without materializing the
// full access.
func (t *Trace) Addr(i int) uint64 { return t.addrs[i] }

// KindAt returns the stream kind of record i.
func (t *Trace) KindAt(i int) Kind { return Kind(t.meta[i] & 0x7f) }

// WriteAt reports whether record i is a store.
func (t *Trace) WriteAt(i int) bool { return t.meta[i]&metaWrite != 0 }

// Append adds one record. The access's Seq is ignored; its position in
// the trace is its sequence number.
func (t *Trace) Append(a Access) {
	t.addrs = append(t.addrs, a.Addr)
	t.meta = append(t.meta, PackMeta(a.Kind, a.Write))
}

// Emit implements Sink, so a Trace can terminate a render-cache complex
// directly and collect the packed LLC trace with no intermediate
// []Access.
func (t *Trace) Emit(a Access) { t.Append(a) }

// Reset empties the trace, keeping the allocated capacity so the buffer
// can be reused across frames.
func (t *Trace) Reset() {
	t.addrs = t.addrs[:0]
	t.meta = t.meta[:0]
}

// Grow ensures capacity for at least n more records, mirroring
// slices.Grow semantics; it is the pre-sizing hook trace synthesis uses
// to kill repeated append growth.
func (t *Trace) Grow(n int) {
	if n <= 0 {
		return
	}
	if need := len(t.addrs) + n; need > cap(t.addrs) {
		addrs := make([]uint64, len(t.addrs), need)
		copy(addrs, t.addrs)
		t.addrs = addrs
	}
	if need := len(t.meta) + n; need > cap(t.meta) {
		meta := make([]uint8, len(t.meta), need)
		copy(meta, t.meta)
		t.meta = meta
	}
}

// Bytes returns the approximate heap footprint of the trace in bytes
// (capacity, not length — what the memory budget actually pays for).
func (t *Trace) Bytes() int64 {
	return int64(cap(t.addrs))*8 + int64(cap(t.meta))
}

// Records exposes the raw packed columns (addresses and meta bytes) as
// read-only views for hot replay loops that want plain slice indexing
// with no per-record method call. Callers must not mutate either slice.
func (t *Trace) Records() (addrs []uint64, meta []uint8) {
	return t.addrs, t.meta
}

// Materialize converts the packed trace back to a []Access with Seq
// assigned in order, for consumers that still need the slice form.
func (t *Trace) Materialize() []Access {
	out := make([]Access, t.Len())
	for i := range out {
		out[i] = t.At(i)
	}
	return out
}
