package faultinject

import (
	"errors"
	"fmt"
	"sync"

	"gspc/internal/durable"
)

// Disk-fault errors. They are distinct sentinels so tests can assert
// which injection fired.
var (
	// ErrNoSpace emulates ENOSPC: the write budget is exhausted, the
	// write persisted only partially (a short write).
	ErrNoSpace = errors.New("faultinject: no space left on device")
	// ErrSyncFailed emulates a failed fsync: the data may or may not
	// have reached the platter.
	ErrSyncFailed = errors.New("faultinject: fsync failed")
	// ErrCrashed is returned for every operation after the crash point:
	// the process is "dead" and nothing further reaches the disk.
	ErrCrashed = errors.New("faultinject: simulated crash")
)

// FSCounts tallies applied disk decisions for test assertions.
type FSCounts struct {
	Writes       int64
	BytesWritten int64
	ShortWrites  int64
	SyncFails    int64
	ReadsMangled int64
}

// FaultFS wraps a durable.FS and injects disk faults: short/torn
// writes, ENOSPC, fsync failures, read corruption, and a hard crash
// after a byte budget. All knobs are deterministic — a scenario driven
// with the same knobs produces the same on-disk bytes — which is what
// lets the kill-at-every-offset chaos suite enumerate crash points.
//
// The crash budget counts bytes actually handed to the base FS across
// all files: CrashAfterBytes(n) persists exactly the first n written
// bytes, tears the write that crosses the boundary, and fails every
// operation afterwards with ErrCrashed, emulating power loss at that
// offset.
type FaultFS struct {
	base durable.FS

	mu sync.Mutex
	// crashAfter < 0 disables the crash budget.
	crashAfter int64
	crashed    bool
	// writeBudget < 0 disables ENOSPC injection.
	writeBudget int64
	// tornNext >= 0 tears the next write to that many bytes, once.
	tornNext int64
	// syncFails fails the next N Sync calls.
	syncFails int
	// mangle flips one byte of ReadFile(name) at offset, every read.
	mangle map[string]readMangle
	counts FSCounts
}

type readMangle struct {
	off int64
	xor byte
}

// NewFaultFS wraps base (durable.OSFS() when nil) with no faults armed.
func NewFaultFS(base durable.FS) *FaultFS {
	if base == nil {
		base = durable.OSFS()
	}
	return &FaultFS{base: base, crashAfter: -1, writeBudget: -1, tornNext: -1}
}

// CrashAfterBytes arms the crash point: after n more written bytes
// every operation fails with ErrCrashed. Negative disarms.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfter = n
	f.crashed = false
}

// SetWriteBudget allows n more bytes before writes fail with
// ErrNoSpace (ENOSPC); the crossing write is short. Negative disarms.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// TearNextWrite makes the next write persist only keep bytes and
// return an error, emulating a torn write (crash mid-append).
func (f *FaultFS) TearNextWrite(keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornNext = int64(keep)
}

// FailNextSyncs fails the next n Sync calls with ErrSyncFailed.
func (f *FaultFS) FailNextSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncFails = n
}

// MangleReads flips the byte at off of every subsequent ReadFile(name)
// result with xor, emulating at-rest corruption (bit rot, bad sector
// remap). A zero xor disarms the mangle for name.
func (f *FaultFS) MangleReads(name string, off int64, xor byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mangle == nil {
		f.mangle = map[string]readMangle{}
	}
	if xor == 0 {
		delete(f.mangle, name)
		return
	}
	f.mangle[name] = readMangle{off: off, xor: xor}
}

// Counts snapshots the tally.
func (f *FaultFS) Counts() FSCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// Crashed reports whether the crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// admit checks the crash state for a non-write operation.
func (f *FaultFS) admit() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// clampWrite decides how many of n bytes the next write may persist
// and which error (if any) to return alongside. Callers hold no lock.
func (f *FaultFS) clampWrite(n int) (allow int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	allow = n
	if f.tornNext >= 0 {
		if int64(n) > f.tornNext {
			allow = int(f.tornNext)
			err = fmt.Errorf("faultinject: torn write (%d of %d bytes): %w", allow, n, ErrCrashed)
		}
		f.tornNext = -1
	}
	if f.writeBudget >= 0 {
		if int64(allow) > f.writeBudget {
			allow = int(f.writeBudget)
			err = ErrNoSpace
		}
		f.writeBudget -= int64(allow)
	}
	if f.crashAfter >= 0 {
		if int64(allow) >= f.crashAfter {
			allow = int(f.crashAfter)
			f.crashAfter = 0
			f.crashed = true
			err = ErrCrashed
		} else {
			f.crashAfter -= int64(allow)
		}
	}
	f.counts.Writes++
	f.counts.BytesWritten += int64(allow)
	if allow < n {
		f.counts.ShortWrites++
	}
	return allow, err
}

// faultFile wraps one open file with the shared fault state.
type faultFile struct {
	fs   *FaultFS
	f    durable.File
	name string
}

// Write implements durable.File with injected short writes.
func (w *faultFile) Write(p []byte) (int, error) {
	allow, ierr := w.fs.clampWrite(len(p))
	var n int
	var err error
	if allow > 0 {
		n, err = w.f.Write(p[:allow])
	}
	if err != nil {
		return n, err
	}
	if ierr != nil {
		return n, ierr
	}
	return n, nil
}

// Sync implements durable.File with injected fsync failures.
func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	if w.fs.crashed {
		w.fs.mu.Unlock()
		return ErrCrashed
	}
	if w.fs.syncFails > 0 {
		w.fs.syncFails--
		w.fs.counts.SyncFails++
		w.fs.mu.Unlock()
		return ErrSyncFailed
	}
	w.fs.mu.Unlock()
	return w.f.Sync()
}

// Close always closes the underlying file, even post-crash: the fake
// death must not leak real descriptors.
func (w *faultFile) Close() error { return w.f.Close() }

// OpenAppend implements durable.FS.
func (f *FaultFS) OpenAppend(name string) (durable.File, error) {
	if err := f.admit(); err != nil {
		return nil, err
	}
	file, err := f.base.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

// Create implements durable.FS.
func (f *FaultFS) Create(name string) (durable.File, error) {
	if err := f.admit(); err != nil {
		return nil, err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

// ReadFile implements durable.FS with injected read corruption.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.admit(); err != nil {
		return nil, err
	}
	data, err := f.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	m, ok := f.mangle[name]
	if ok && m.off >= 0 && m.off < int64(len(data)) {
		data[m.off] ^= m.xor
		f.counts.ReadsMangled++
	}
	f.mu.Unlock()
	return data, nil
}

// Rename implements durable.FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.admit(); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements durable.FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.admit(); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// Truncate implements durable.FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.admit(); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

// MkdirAll implements durable.FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.admit(); err != nil {
		return err
	}
	return f.base.MkdirAll(dir)
}

// SyncDir implements durable.FS, counting against sync failures.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	if f.syncFails > 0 {
		f.syncFails--
		f.counts.SyncFails++
		f.mu.Unlock()
		return ErrSyncFailed
	}
	f.mu.Unlock()
	return f.base.SyncDir(dir)
}
