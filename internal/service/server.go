package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"gspc/internal/telemetry"
)

// Server is the HTTP face of an Engine. Routes:
//
//	GET  /healthz            liveness: the process is up and serving
//	GET  /readyz             readiness: the engine should receive new work
//	GET  /metricsz           Metrics snapshot (JSON)
//	GET  /metrics            Prometheus text exposition
//	GET  /debugz             flight recorder: recent job lifecycle events
//	GET  /versionz           build identification
//	GET  /v1/experiments     runnable experiment ids and titles
//	POST /v1/runs            run (or replay) an experiment; ?wait=0 queues,
//	                         ?timeout_ms=N caps the run's deadline
//	GET  /v1/runs/{id}       job status and, when done, its result
//	GET  /v1/runs/{id}/trace Chrome/Perfetto trace-event JSON of the run
//	PUT  /v1/replicas/{key}  install a result replicated from another
//	                         cluster node (X-Gspc-Experiment/-Run headers)
//
// Successful POST bodies are the exact cached result bytes; serving
// metadata (cache disposition, run id, duration) travels in X-Gspc-*
// headers so replays stay byte-identical.
type Server struct {
	engine *Engine
	mux    *http.ServeMux

	// NodeName, when set, is stamped on every response as X-Gspc-Node so
	// cluster clients (and the gspc-cluster coordinator's tests) can see
	// which member actually served a request. Set it before serving.
	NodeName string
}

// NewServer wires the routes for an engine.
func NewServer(e *Engine) *Server {
	s := &Server{engine: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.HandleFunc("GET /debugz", s.handleDebug)
	s.mux.HandleFunc("GET /versionz", s.handleVersion)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("PUT /v1/replicas/{key}", s.handleReplicaPut)
	return s
}

// Headers of the cluster observability plane, shared by gspcd and the
// gspc-cluster coordinator. The trace pair propagates a distributed
// trace identity downstream; the clock pair echoes this node's
// receive/send timestamps (unix nanoseconds on its own clock) so the
// caller can estimate the clock offset NTP-style and stitch traces with
// corrected timestamps.
const (
	HeaderTraceID    = "X-Gspc-Trace-Id"
	HeaderParentSpan = "X-Gspc-Parent-Span"
	HeaderRecvNs     = "X-Gspc-Recv-Ns"
	HeaderSentNs     = "X-Gspc-Sent-Ns"
)

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.NodeName != "" {
		w.Header().Set("X-Gspc-Node", s.NodeName)
	}
	w.Header().Set(HeaderRecvNs, strconv.FormatInt(time.Now().UnixNano(), 10))
	s.mux.ServeHTTP(&clockEchoWriter{ResponseWriter: w}, r)
}

// clockEchoWriter stamps X-Gspc-Sent-Ns as late as possible — at the
// moment the header section is flushed — so the echoed send timestamp
// excludes as little of the node's processing time as we can manage.
type clockEchoWriter struct {
	http.ResponseWriter
	wrote bool
}

func (c *clockEchoWriter) WriteHeader(code int) {
	if !c.wrote {
		c.wrote = true
		c.Header().Set(HeaderSentNs, strconv.FormatInt(time.Now().UnixNano(), 10))
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *clockEchoWriter) Write(b []byte) (int, error) {
	if !c.wrote {
		c.WriteHeader(http.StatusOK)
	}
	return c.ResponseWriter.Write(b)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeErrorCategory(w, code, "", msg)
}

// writeErrorCategory emits the error envelope; category is included when
// known so clients can branch on the stable string instead of parsing
// messages.
func writeErrorCategory(w http.ResponseWriter, code int, category Category, msg string) {
	body := map[string]string{"error": msg}
	if category != "" {
		body["category"] = string(category)
	}
	writeJSON(w, code, body)
}

// handleHealth is liveness only: it answers 200 whenever the process can
// serve HTTP, even while draining or degraded. Deployment orchestrators
// should restart on failed liveness and stop routing on failed
// readiness — conflating the two turns a saturated queue into a crash
// loop.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady answers readiness with the full load snapshot: a cluster
// coordinator health-checking this endpoint routes on the body (queue
// depth, open breakers, draining), not just the status code.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready, info := s.engine.ReadinessInfo()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, info)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Metrics())
}

func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	w.Write(s.engine.PromExposition())
}

// handleDebug serves the flight recorder: the last N job lifecycle
// events, newest first, plus how many were ever recorded.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	events, total := s.engine.FlightEvents()
	writeJSON(w, http.StatusOK, map[string]any{
		"total_events": total,
		"events":       events,
	})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.BuildInfo())
}

// handleRunTrace serves a run's spans as Chrome trace-event JSON,
// loadable in ui.perfetto.dev or chrome://tracing. 404 distinguishes an
// unknown id from a known-but-untraced run only by message.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, ok := s.engine.TraceJSON(id)
	if !ok {
		if _, known := s.engine.JobStatus(id); known {
			writeError(w, http.StatusNotFound, "run was not traced (sampled out by -trace-every, or trace pruned)")
		} else {
			writeError(w, http.StatusNotFound, "unknown run id")
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// maxReplicaBytes bounds a replicated result body; the largest real
// results (full-suite tables) are well under a megabyte.
const maxReplicaBytes = 32 << 20

// handleReplicaPut installs a result computed by another cluster node
// into this node's cache: the coordinator replicates hot results onto
// ring followers so an owner's death degrades to replica-served reads
// instead of recomputation. The experiment id and originating run id
// travel in X-Gspc-Experiment / X-Gspc-Run headers; the body is the
// exact result bytes.
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read replica body: "+err.Error())
		return
	}
	if len(body) > maxReplicaBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("replica body exceeds %d bytes", maxReplicaBytes))
		return
	}
	err = s.engine.InstallReplica(r.PathValue("key"),
		r.Header.Get("X-Gspc-Experiment"), r.Header.Get("X-Gspc-Run"), body)
	if err != nil {
		s.writeEngineErrorNoCtx(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": Experiments()})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErrorCategory(w, http.StatusBadRequest, CategoryInvalid, "invalid JSON body: "+err.Error())
		return
	}
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		ms, err := strconv.ParseInt(q, 10, 64)
		if err != nil || ms <= 0 {
			writeErrorCategory(w, http.StatusBadRequest, CategoryInvalid,
				fmt.Sprintf("timeout_ms %q must be a positive integer", q))
			return
		}
		// The query cap tightens whatever the body asked for.
		if req.TimeoutMS == 0 || ms < req.TimeoutMS {
			req.TimeoutMS = ms
		}
	}
	if r.Header.Get("X-Gspc-Cache-Only") != "" {
		// A cache-only probe never commits this node to a simulation: the
		// coordinator uses it to serve from a replica while the key's
		// owner is saturated. 404 means "not here", not "does not exist".
		nreq, err := req.Normalize()
		if err != nil {
			s.writeEngineErrorNoCtx(w, err)
			return
		}
		if rep, ok := s.engine.Cached(nreq.Key()); ok {
			s.writeReply(w, http.StatusOK, rep)
			return
		}
		writeError(w, http.StatusNotFound, "result not cached on this node")
		return
	}
	hint := TraceHint{
		TraceID:    r.Header.Get(HeaderTraceID),
		ParentSpan: r.Header.Get(HeaderParentSpan),
	}
	if r.URL.Query().Get("wait") == "0" {
		s.handleRunAsync(w, req, hint)
		return
	}
	rep, err := s.engine.DoTraced(r.Context(), req, hint)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	s.writeReply(w, http.StatusOK, rep)
}

// handleRunAsync queues the job and returns 202 with its id; a cache hit
// still returns the result immediately.
func (s *Server) handleRunAsync(w http.ResponseWriter, req Request, hint TraceHint) {
	job, rep, err := s.engine.SubmitTraced(req, hint)
	if err != nil {
		s.writeEngineErrorNoCtx(w, err)
		return
	}
	if rep != nil {
		s.writeReply(w, http.StatusOK, rep)
		return
	}
	if job.Downgraded {
		w.Header().Set("X-Gspc-Fidelity-Downgraded", "memory")
	}
	w.Header().Set("Location", "/v1/runs/"+job.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID, "status": string(StatusQueued)})
}

func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.engine.JobStatus(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run id")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// writeReply sends the exact result bytes with serving metadata in
// headers only.
func (s *Server) writeReply(w http.ResponseWriter, code int, rep *Reply) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	disposition := "miss"
	switch {
	case rep.Stale:
		disposition = "stale"
	case rep.Cached:
		disposition = "hit"
	case rep.Coalesced:
		disposition = "coalesced"
	}
	h.Set("X-Gspc-Cache", disposition)
	if rep.Downgraded {
		// The memory governor forced this request from exact to sampled
		// fidelity; the body carries Result.Sampling with the error bound.
		h.Set("X-Gspc-Fidelity-Downgraded", "memory")
	}
	h.Set("X-Gspc-Run", rep.RunID)
	h.Set("X-Gspc-Duration-Ms", strconv.FormatFloat(float64(rep.Duration)/float64(time.Millisecond), 'f', 3, 64))
	w.WriteHeader(code)
	w.Write(rep.Body)
	if len(rep.Body) == 0 || rep.Body[len(rep.Body)-1] != '\n' {
		fmt.Fprintln(w)
	}
}

// statusFor maps a typed job failure to its HTTP status code. The table
// is the wire contract documented in README.md: invalid → 400, timeout
// and canceled → 504, panic and internal → 500.
func statusFor(c Category) int {
	switch c {
	case CategoryInvalid:
		return http.StatusBadRequest
	case CategoryTimeout, CategoryCanceled:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
		// The client went away. A still-queued job with no other waiters
		// was cancelled by the engine; a running one keeps going for
		// future replays.
		writeErrorCategory(w, http.StatusGatewayTimeout, CategoryCanceled,
			"request cancelled while waiting: "+err.Error())
		return
	}
	s.writeEngineErrorNoCtx(w, err)
}

func (s *Server) writeEngineErrorNoCtx(w http.ResponseWriter, err error) {
	var bad *BadRequestError
	var typed *Error
	var open *CircuitOpenError
	var memp *MemoryPressureError
	switch {
	case errors.As(err, &bad):
		writeErrorCategory(w, http.StatusBadRequest, CategoryInvalid, bad.Reason)
	case errors.As(err, &open):
		secs := int(math.Ceil(open.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &memp):
		// Memory-ladder refusals: stale-only (a degraded node that would
		// have served stale but has nothing remembered) maps to 503 like
		// other degraded-unavailable states; shed maps to 429 like queue
		// backpressure. Both tell the client when retrying can first help.
		secs := int(math.Ceil(memp.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		if memp.StaleOnly {
			writeError(w, http.StatusServiceUnavailable, err.Error())
		} else {
			writeError(w, http.StatusTooManyRequests, err.Error())
		}
	case errors.As(err, &typed):
		writeErrorCategory(w, statusFor(typed.Category), typed.Category, typed.Message)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
