package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	d := NewData("demo", "a", "b")
	d.Add("row1", 1.0, 2.0)
	d.Add("row2", 4.0)
	var buf bytes.Buffer
	Chart{Width: 8}.Render(&buf, d)
	out := buf.String()
	for _, want := range []string{"demo", "row1", "row2", "a", "b", "####"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value (4.0) gets the full width.
	if !strings.Contains(out, strings.Repeat("#", 8)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
}

func TestRenderBaseline(t *testing.T) {
	d := NewData("norm", "p")
	d.Add("good", 0.9)
	d.Add("bad", 1.1)
	var buf bytes.Buffer
	Chart{Width: 10, Baseline: 1.0}.Render(&buf, d)
	out := buf.String()
	if !strings.Contains(out, "-") || !strings.Contains(out, "+") {
		t.Errorf("baseline chart missing deviation bars:\n%s", out)
	}
	if !strings.Contains(out, "deviation from 1") {
		t.Errorf("baseline legend missing:\n%s", out)
	}
}

func TestExtraValuesIgnored(t *testing.T) {
	d := NewData("x", "only")
	d.Add("r", 1, 2, 3)
	if len(d.Rows[0].values) != 1 {
		t.Error("extra values not trimmed")
	}
}

func TestZeroAndNegativeSafe(t *testing.T) {
	d := NewData("z", "s")
	d.Add("zero", 0)
	d.Add("neg", -1)
	var buf bytes.Buffer
	Chart{}.Render(&buf, d)
	if buf.Len() == 0 {
		t.Error("nothing rendered")
	}
}

func TestDefaultWidth(t *testing.T) {
	d := NewData("w", "s")
	d.Add("r", 1)
	var buf bytes.Buffer
	Chart{}.Render(&buf, d)
	if !strings.Contains(buf.String(), strings.Repeat("#", 48)) {
		t.Error("default width not applied to the max bar")
	}
}
