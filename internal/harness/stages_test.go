package harness

import (
	"context"
	"testing"
	"time"
)

// TestStageScopesIsolate verifies the two-level stage accounting: work
// tracked under a context carrying a StageSet lands in that set only,
// never a sibling's, while the process-global clock accumulates the sum
// of every scope (plus unscoped work).
func TestStageScopesIsolate(t *testing.T) {
	a, b := NewStageSet(), NewStageSet()
	globalBefore := Timings()

	ctxA := WithStages(context.Background(), a)
	ctxB := WithStages(context.Background(), b)

	track := func(ctx context.Context, pick func(*StageSet) *stageClock, n int) {
		for i := 0; i < n; i++ {
			stop := trackStage(ctx, pick)
			time.Sleep(time.Millisecond)
			stop()
		}
	}
	track(ctxA, pickSynth, 2)
	track(ctxA, pickReplay, 1)
	track(ctxB, pickReplay, 3)
	track(context.Background(), pickTiming, 1) // unscoped: global only

	ta, tb := a.Timings(), b.Timings()
	if ta.SynthCount != 2 || ta.ReplayCount != 1 || ta.TimingCount != 0 {
		t.Errorf("scope A counts = %d/%d/%d, want 2 synth, 1 replay, 0 timing",
			ta.SynthCount, ta.ReplayCount, ta.TimingCount)
	}
	if tb.SynthCount != 0 || tb.ReplayCount != 3 || tb.TimingCount != 0 {
		t.Errorf("scope B counts = %d/%d/%d, want 0 synth, 3 replay, 0 timing",
			tb.SynthCount, tb.ReplayCount, tb.TimingCount)
	}
	if ta.SynthMs <= 0 || tb.ReplayMs <= 0 {
		t.Errorf("scoped stage time not accumulated: A synth %.3fms, B replay %.3fms",
			ta.SynthMs, tb.ReplayMs)
	}

	g := Timings()
	if d := g.SynthCount - globalBefore.SynthCount; d != 2 {
		t.Errorf("global synth count grew by %d, want 2", d)
	}
	if d := g.ReplayCount - globalBefore.ReplayCount; d != 4 {
		t.Errorf("global replay count grew by %d, want 4 (both scopes)", d)
	}
	if d := g.TimingCount - globalBefore.TimingCount; d != 1 {
		t.Errorf("global timing count grew by %d, want 1 (unscoped)", d)
	}
	// The global clock is the sum: it accumulated at least what each
	// scope saw (other tests may add concurrently, so >= not ==).
	if g.ReplayMs-globalBefore.ReplayMs < ta.ReplayMs+tb.ReplayMs-1e-6 {
		t.Errorf("global replay time %.3fms grew less than the scopes' sum %.3fms",
			g.ReplayMs-globalBefore.ReplayMs, ta.ReplayMs+tb.ReplayMs)
	}
}

func TestWithStagesNilIsNoOp(t *testing.T) {
	ctx := WithStages(context.Background(), nil)
	if stagesFrom(ctx) != nil {
		t.Error("nil StageSet round-tripped as non-nil")
	}
	// Tracking against a nil-scope context must not panic and must still
	// feed the global clock.
	before := Timings()
	trackStage(ctx, pickSynth)()
	if Timings().SynthCount != before.SynthCount+1 {
		t.Error("unscoped trackStage did not feed the process-global clock")
	}
}

// TestEngineScopedStagesViaRun drives a real (tiny) experiment under a
// scoped context and checks the harness instrumentation feeds the scope.
func TestEngineScopedStagesViaRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	s := NewStageSet()
	ctx := WithStages(context.Background(), s)
	if _, err := RunResultContext(ctx, "fig12", Options{MaxFramesPerApp: 1, Scale: 0.05, Apps: []string{"Dirt"}}); err != nil {
		t.Fatal(err)
	}
	ts := s.Timings()
	if ts.SynthCount == 0 && ts.ReplayCount == 0 {
		t.Errorf("experiment under scoped context left the scope empty: %+v", ts)
	}
}
