package core

import (
	"testing"
	"testing/quick"

	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// newTestPolicy returns a policy with 128 sets x 4 ways. Sample sets in
// this geometry are 0 and 65; bank 0 covers sets 0..31.
func newTestPolicy(v Variant) *Policy {
	g := New(DefaultParams(v))
	g.Reset(128, 4)
	return g
}

const (
	sampleSet    = 0 // bank 0
	nonSampleSet = 5 // bank 0
)

func texAcc() stream.Access { return stream.Access{Kind: stream.Texture} }
func zAcc() stream.Access   { return stream.Access{Kind: stream.Z} }
func rtAcc() stream.Access  { return stream.Access{Kind: stream.RT} }

func TestSampleDensity(t *testing.T) {
	g := New(DefaultParams(VariantGSPC))
	g.Reset(8192, 16)
	count := 0
	for s := 0; s < 8192; s++ {
		if g.IsSample(s) {
			count++
		}
	}
	if count != 128 {
		t.Errorf("sample sets in 8192 = %d, want 128 (16 per 1024)", count)
	}
	// And per 1024-set window.
	for w := 0; w < 8; w++ {
		n := 0
		for s := w * 1024; s < (w+1)*1024; s++ {
			if g.IsSample(s) {
				n++
			}
		}
		if n != 16 {
			t.Errorf("window %d has %d samples, want 16", w, n)
		}
	}
}

func TestVariantNames(t *testing.T) {
	if VariantGSPZTC.String() != "GSPZTC" ||
		VariantGSPZTCTSE.String() != "GSPZTC+TSE" ||
		VariantGSPC.String() != "GSPC" {
		t.Error("variant names wrong")
	}
	g := New(Params{Variant: VariantGSPC, T: 4})
	if g.Name() != "GSPC(t=4)" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestDefaultParamsApplied(t *testing.T) {
	g := New(Params{Variant: VariantGSPC})
	p := g.Params()
	if p.T != 8 || p.Banks != 4 || p.RRIPBits != 2 || p.ProdConsHi != 16 || p.ProdConsLo != 8 {
		t.Errorf("defaults not applied: %+v", p)
	}
}

// Table 3 (sample sets): fills insert at RRPV 2 and bump stream counters.
func TestSampleFillActions(t *testing.T) {
	g := newTestPolicy(VariantGSPC)

	g.Fill(sampleSet, 0, zAcc())
	if g.RRPV(sampleSet, 0) != 2 {
		t.Errorf("sample Z fill RRPV = %d, want 2 (SRRIP)", g.RRPV(sampleSet, 0))
	}
	if c := g.CountersFor(sampleSet); c.FillZ != 1 || c.Acc != 1 {
		t.Errorf("counters after Z fill: %+v", c)
	}

	g.Fill(sampleSet, 1, texAcc())
	if g.StateOf(sampleSet, 1) != StateE0 {
		t.Error("texture fill must enter state 00")
	}
	if c := g.CountersFor(sampleSet); c.FillE[0] != 1 {
		t.Errorf("FILL(0) = %d after texture fill", c.FillE[0])
	}

	g.Fill(sampleSet, 2, rtAcc())
	if g.StateOf(sampleSet, 2) != StateRT {
		t.Error("RT fill must enter state 11")
	}
	if c := g.CountersFor(sampleSet); c.Prod != 1 {
		t.Errorf("PROD = %d after RT fill", c.Prod)
	}
}

// Table 4 (sample sets): the texture epoch counter protocol.
func TestSampleTextureEpochProtocol(t *testing.T) {
	g := newTestPolicy(VariantGSPC)

	// RT fill then texture hit: consumption. FILL(0)++ and CONS++.
	g.Fill(sampleSet, 0, rtAcc())
	g.Hit(sampleSet, 0, texAcc())
	c := g.CountersFor(sampleSet)
	if c.FillE[0] != 1 || c.Cons != 1 {
		t.Errorf("after RT->TEX: FILL(0)=%d CONS=%d", c.FillE[0], c.Cons)
	}
	if g.StateOf(sampleSet, 0) != StateE0 {
		t.Error("consumed RT must enter E0")
	}
	if g.RRPV(sampleSet, 0) != 0 {
		t.Error("sample hit must promote to RRPV 0 (SRRIP)")
	}

	// E0 -> E1: HIT(0)++ and FILL(1)++.
	g.Hit(sampleSet, 0, texAcc())
	c = g.CountersFor(sampleSet)
	if c.HitE[0] != 1 || c.FillE[1] != 1 {
		t.Errorf("after E0 hit: HIT(0)=%d FILL(1)=%d", c.HitE[0], c.FillE[1])
	}
	if g.StateOf(sampleSet, 0) != StateE1 {
		t.Error("block must advance to E1")
	}

	// E1 -> E2: HIT(1)++.
	g.Hit(sampleSet, 0, texAcc())
	c = g.CountersFor(sampleSet)
	if c.HitE[1] != 1 {
		t.Errorf("HIT(1) = %d", c.HitE[1])
	}
	if g.StateOf(sampleSet, 0) != StateE2 {
		t.Error("block must advance to E2")
	}

	// E2 stays E2; no further counters.
	g.Hit(sampleSet, 0, texAcc())
	if g.StateOf(sampleSet, 0) != StateE2 {
		t.Error("E2 must be absorbing for texture hits")
	}
	c2 := g.CountersFor(sampleSet)
	if c2.HitE[0] != c.HitE[0] || c2.HitE[1] != c.HitE[1] {
		t.Error("E>=2 hits must not move epoch counters")
	}
}

// Plain GSPZTC tracks only the aggregate texture reuse: an E0 hit counts
// HIT(TEX) but does not advance epochs.
func TestGSPZTCNoEpochs(t *testing.T) {
	g := newTestPolicy(VariantGSPZTC)
	g.Fill(sampleSet, 0, texAcc())
	g.Hit(sampleSet, 0, texAcc())
	c := g.CountersFor(sampleSet)
	if c.HitE[0] != 1 {
		t.Errorf("HIT(TEX) = %d", c.HitE[0])
	}
	if c.FillE[1] != 0 {
		t.Error("GSPZTC must not track epoch 1 fills")
	}
	if g.StateOf(sampleSet, 0) != StateE0 {
		t.Error("GSPZTC blocks stay in E0 on texture hits")
	}
}

// GSPZTC and GSPZTC+TSE do not maintain PROD/CONS.
func TestProdConsOnlyInGSPC(t *testing.T) {
	for _, v := range []Variant{VariantGSPZTC, VariantGSPZTCTSE} {
		g := newTestPolicy(v)
		g.Fill(sampleSet, 0, rtAcc())
		g.Hit(sampleSet, 0, texAcc())
		c := g.CountersFor(sampleSet)
		if c.Prod != 0 || c.Cons != 0 {
			t.Errorf("%v tracks PROD/CONS: %+v", v, c)
		}
	}
}

// Table 3 (non-samples): Z insertion follows the learned probability.
func TestNonSampleZFill(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	// No learning yet: FILL(Z)=0 -> 0 > t*0 is false -> long (RRPV 2).
	g.Fill(nonSampleSet, 0, zAcc())
	if g.RRPV(nonSampleSet, 0) != 2 {
		t.Errorf("Z fill with no evidence RRPV = %d, want 2", g.RRPV(nonSampleSet, 0))
	}
	// Teach: many Z fills in samples, no hits -> dead -> distant.
	for i := 0; i < 20; i++ {
		g.Fill(sampleSet, i%4, zAcc())
	}
	g.Fill(nonSampleSet, 1, zAcc())
	if g.RRPV(nonSampleSet, 1) != 3 {
		t.Errorf("dead-Z fill RRPV = %d, want 3", g.RRPV(nonSampleSet, 1))
	}
	// Now record hits so that FILL <= t*HIT.
	for i := 0; i < 4; i++ {
		g.Hit(sampleSet, 0, zAcc())
	}
	g.Fill(nonSampleSet, 2, zAcc())
	if g.RRPV(nonSampleSet, 2) != 2 {
		t.Errorf("live-Z fill RRPV = %d, want 2", g.RRPV(nonSampleSet, 2))
	}
}

// Table 3/4 (non-samples): texture insertion is 3 (dead) or 0 (live) —
// never 2, which the paper found to hurt.
func TestNonSampleTexFill(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	for i := 0; i < 20; i++ {
		g.Fill(sampleSet, i%4, texAcc())
	}
	g.Fill(nonSampleSet, 0, texAcc())
	if g.RRPV(nonSampleSet, 0) != 3 {
		t.Errorf("dead-texture fill RRPV = %d, want 3", g.RRPV(nonSampleSet, 0))
	}
	// Lots of E0 hits: reuse probability above 1/(t+1) -> protect at 0.
	g2 := newTestPolicy(VariantGSPC)
	g2.Fill(sampleSet, 0, texAcc())
	for i := 0; i < 8; i++ {
		g2.Fill(sampleSet, 1, texAcc())
		g2.Hit(sampleSet, 1, texAcc()) // E0 hit each time
	}
	g2.Fill(nonSampleSet, 0, texAcc())
	if g2.RRPV(nonSampleSet, 0) != 0 {
		t.Errorf("live-texture fill RRPV = %d, want 0", g2.RRPV(nonSampleSet, 0))
	}
}

// Tables 3 and 5 (non-samples): render target insertion. Static variants
// always protect; GSPC follows PROD/CONS bands.
func TestNonSampleRTFill(t *testing.T) {
	for _, v := range []Variant{VariantGSPZTC, VariantGSPZTCTSE} {
		g := newTestPolicy(v)
		g.Fill(nonSampleSet, 0, rtAcc())
		if g.RRPV(nonSampleSet, 0) != 0 {
			t.Errorf("%v RT fill RRPV = %d, want 0", v, g.RRPV(nonSampleSet, 0))
		}
		if g.StateOf(nonSampleSet, 0) != StateRT {
			t.Errorf("%v RT fill state != 11", v)
		}
	}

	// GSPC band 1: PROD > 16*CONS -> distant.
	g := newTestPolicy(VariantGSPC)
	for i := 0; i < 20; i++ {
		g.Fill(sampleSet, i%4, rtAcc()) // PROD=20, CONS=0
	}
	g.Fill(nonSampleSet, 0, rtAcc())
	if g.RRPV(nonSampleSet, 0) != 3 {
		t.Errorf("unconsumed-RT fill RRPV = %d, want 3", g.RRPV(nonSampleSet, 0))
	}

	// Band 2: 8*CONS < PROD <= 16*CONS -> long (2).
	g2 := newTestPolicy(VariantGSPC)
	for i := 0; i < 12; i++ {
		g2.Fill(sampleSet, 0, rtAcc())
	}
	g2.Fill(sampleSet, 1, rtAcc())
	g2.Hit(sampleSet, 1, texAcc()) // PROD=13, CONS=1 -> 13 in (8, 16]
	g2.Fill(nonSampleSet, 0, rtAcc())
	if g2.RRPV(nonSampleSet, 0) != 2 {
		t.Errorf("band-2 RT fill RRPV = %d, want 2", g2.RRPV(nonSampleSet, 0))
	}

	// Band 3: PROD <= 8*CONS -> full protection (0).
	g3 := newTestPolicy(VariantGSPC)
	for i := 0; i < 4; i++ {
		g3.Fill(sampleSet, 0, rtAcc())
		g3.Hit(sampleSet, 0, texAcc()) // PROD=4, CONS=4
	}
	g3.Fill(nonSampleSet, 0, rtAcc())
	if g3.RRPV(nonSampleSet, 0) != 0 {
		t.Errorf("consumed-RT fill RRPV = %d, want 0", g3.RRPV(nonSampleSet, 0))
	}
}

// Table 4 (non-samples): the texture hit ladder RRPVs.
func TestNonSampleTexHitLadder(t *testing.T) {
	g := newTestPolicy(VariantGSPZTCTSE)
	// Teach that E0 is dead and E1 is dead.
	for i := 0; i < 20; i++ {
		g.Fill(sampleSet, i%4, texAcc())
	}
	// RT->TEX consumption on a non-sample: state 11 -> 00, RRPV via E0.
	g.Fill(nonSampleSet, 0, rtAcc())
	g.Hit(nonSampleSet, 0, texAcc())
	if g.StateOf(nonSampleSet, 0) != StateE0 {
		t.Error("consumed RT must enter E0")
	}
	if g.RRPV(nonSampleSet, 0) != 3 {
		t.Errorf("dead-E0 consumption RRPV = %d, want 3", g.RRPV(nonSampleSet, 0))
	}
	// E0 -> E1 hit: uses FILL(1)/HIT(1); with FILL(1)=0 the test
	// 0 > t*0 fails -> RRPV 0.
	g.Hit(nonSampleSet, 0, texAcc())
	if g.StateOf(nonSampleSet, 0) != StateE1 || g.RRPV(nonSampleSet, 0) != 0 {
		t.Errorf("E0 hit: state=%d rrpv=%d", g.StateOf(nonSampleSet, 0), g.RRPV(nonSampleSet, 0))
	}
	// E1 -> E2 hit: always RRPV 0.
	g.Hit(nonSampleSet, 0, texAcc())
	if g.StateOf(nonSampleSet, 0) != StateE2 || g.RRPV(nonSampleSet, 0) != 0 {
		t.Errorf("E1 hit: state=%d rrpv=%d", g.StateOf(nonSampleSet, 0), g.RRPV(nonSampleSet, 0))
	}
}

// RT hit on a block in any state re-marks it as a render target with full
// protection (render target object reuse).
func TestRTObjectReuse(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	g.Fill(nonSampleSet, 0, texAcc())
	g.Hit(nonSampleSet, 0, rtAcc())
	if g.StateOf(nonSampleSet, 0) != StateRT {
		t.Error("RT hit must set state 11")
	}
	if g.RRPV(nonSampleSet, 0) != 0 {
		t.Error("RT hit must protect at RRPV 0")
	}
}

// Display accesses are render targets from the policy's viewpoint.
func TestDisplayIsRT(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	g.Fill(sampleSet, 0, stream.Access{Kind: stream.Display})
	if g.StateOf(sampleSet, 0) != StateRT {
		t.Error("display fill must be treated as a render target")
	}
	if c := g.CountersFor(sampleSet); c.Prod != 1 {
		t.Error("display fill must count as production")
	}
}

func TestOtherStreamsDefaultInsertion(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	for _, k := range []stream.Kind{stream.Vertex, stream.HiZ, stream.Stencil, stream.Other} {
		g.Fill(nonSampleSet, 0, stream.Access{Kind: k})
		if g.RRPV(nonSampleSet, 0) != 2 {
			t.Errorf("%v fill RRPV = %d, want 2", k, g.RRPV(nonSampleSet, 0))
		}
		g.Hit(nonSampleSet, 0, stream.Access{Kind: k})
		if g.RRPV(nonSampleSet, 0) != 0 {
			t.Errorf("%v hit RRPV = %d, want 0", k, g.RRPV(nonSampleSet, 0))
		}
	}
}

func TestVictimAgingAndTieBreak(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	for w := 0; w < 4; w++ {
		g.Fill(nonSampleSet, w, zAcc()) // all RRPV 2
	}
	v := g.Victim(nonSampleSet, zAcc())
	if v != 0 {
		t.Errorf("victim = %d, want way 0 (minimum way id tie break)", v)
	}
	if g.RRPV(nonSampleSet, 3) != 3 {
		t.Error("aging must raise all RRPVs to the distant value")
	}
}

func TestEvictResetsState(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	g.Fill(nonSampleSet, 0, rtAcc())
	g.Evict(nonSampleSet, 0)
	if g.StateOf(nonSampleSet, 0) != StateE0 {
		t.Error("eviction must reset the RT/epoch state")
	}
	if g.RRPV(nonSampleSet, 0) != 3 {
		t.Error("eviction must reset RRPV to distant")
	}
}

func TestCounterHalving(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	// 127 sample accesses saturate ACC(ALL); the 128th halves.
	for i := 0; i < 127; i++ {
		g.Fill(sampleSet, i%4, zAcc())
	}
	c := g.CountersFor(sampleSet)
	if c.Acc != 127 || c.FillZ != 127 {
		t.Fatalf("pre-halving counters: %+v", c)
	}
	g.Fill(sampleSet, 0, zAcc())
	c = g.CountersFor(sampleSet)
	if c.Acc != 0 {
		t.Errorf("ACC after halving = %d, want 0", c.Acc)
	}
	if c.FillZ != 64 { // 127>>1 = 63, then +1 for this fill
		t.Errorf("FILL(Z) after halving = %d, want 64", c.FillZ)
	}
}

func TestCounterSaturation(t *testing.T) {
	var c Counters
	for i := 0; i < 300; i++ {
		sat(&c.FillZ)
	}
	if c.FillZ != 255 {
		t.Errorf("counter saturated at %d, want 255", c.FillZ)
	}
}

func TestBanksAreIndependent(t *testing.T) {
	g := newTestPolicy(VariantGSPC) // 128 sets, 4 banks, 32 sets each
	g.Fill(0, 0, zAcc())            // sample of bank 0
	g.Fill(65, 0, zAcc())           // sample of bank 2 (set 65)
	if g.CountersFor(0).FillZ != 1 {
		t.Error("bank 0 counter not updated")
	}
	if g.CountersFor(65).FillZ != 1 {
		t.Error("bank 2 counter not updated")
	}
	if g.CountersFor(33).FillZ != 0 {
		t.Error("bank 1 counter must be untouched")
	}
}

func TestThresholdParameter(t *testing.T) {
	// With t=2 (reuse threshold 1/3), a stream with reuse probability
	// between 1/9 and 1/3 is distant under t=2 but long under t=8.
	mk := func(tv int) *Policy {
		p := DefaultParams(VariantGSPZTC)
		p.T = tv
		g := New(p)
		g.Reset(128, 4)
		return g
	}
	teach := func(g *Policy) {
		// 5 fills, 1 hit: probability 0.2.
		for i := 0; i < 5; i++ {
			g.Fill(sampleSet, i%4, zAcc())
		}
		g.Hit(sampleSet, 0, zAcc())
	}
	g2, g8 := mk(2), mk(8)
	teach(g2)
	teach(g8)
	g2.Fill(nonSampleSet, 0, zAcc())
	g8.Fill(nonSampleSet, 0, zAcc())
	if g2.RRPV(nonSampleSet, 0) != 3 {
		t.Errorf("t=2 Z fill RRPV = %d, want 3", g2.RRPV(nonSampleSet, 0))
	}
	if g8.RRPV(nonSampleSet, 0) != 2 {
		t.Errorf("t=8 Z fill RRPV = %d, want 2", g8.RRPV(nonSampleSet, 0))
	}
}

func TestStorageOverhead(t *testing.T) {
	g := New(DefaultParams(VariantGSPC))
	geom := cachesim.Geometry{SizeBytes: 8 << 20, Ways: 16, BlockSize: 64}
	bits := g.StorageOverheadBits(geom)
	// Two bits per block (32 KB = 262144 bits) + 284 counter bits.
	if bits != 262144+284 {
		t.Errorf("overhead = %d bits, want %d", bits, 262144+284)
	}
	// Under 0.5% of the data array, as the paper claims.
	dataBits := geom.SizeBytes * 8
	if float64(bits)/float64(dataBits) > 0.005 {
		t.Error("overhead exceeds 0.5% of the data array")
	}
}

func TestInsertionStatsCounted(t *testing.T) {
	g := newTestPolicy(VariantGSPC)
	for i := 0; i < 20; i++ {
		g.Fill(sampleSet, i%4, rtAcc())
	}
	g.Fill(nonSampleSet, 0, rtAcc()) // distant band
	g.Fill(nonSampleSet, 1, zAcc())
	g.Fill(nonSampleSet, 2, texAcc())
	in := g.Insertions
	if in.RTDistant != 1 || in.ZLong+in.ZDistant != 1 || in.TexDistant+in.TexZero != 1 {
		t.Errorf("insertion stats: %+v", in)
	}
}

// Integration: the full policy through a cache on a random trace keeps
// every block's state and RRPV within range, and basic stats hold.
func TestPolicyThroughCacheProperty(t *testing.T) {
	f := func(addrs []uint16, kinds []byte) bool {
		for _, v := range []Variant{VariantGSPZTC, VariantGSPZTCTSE, VariantGSPC} {
			g := New(DefaultParams(v))
			c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * 4 * 64, Ways: 4, BlockSize: 64}, g)
			for i, ad := range addrs {
				k := stream.Other
				if i < len(kinds) {
					k = stream.Kind(kinds[i] % byte(stream.NumKinds))
				}
				c.Access(stream.Access{Addr: uint64(ad) * 64, Kind: k, Write: i%4 == 0})
			}
			if c.Stats.Accesses != c.Stats.Hits+c.Stats.Misses {
				return false
			}
			for s := 0; s < c.Sets(); s++ {
				for w := 0; w < c.Ways(); w++ {
					if g.StateOf(s, w) > StateRT || g.RRPV(s, w) > g.MaxRRPV() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
