package analysis

import (
	"testing"

	"gspc/internal/cachesim"
	"gspc/internal/policy"
	"gspc/internal/stream"
)

func newCache(ways int) (*cachesim.Cache, *Tracker) {
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * ways, Ways: ways, BlockSize: 64}, policy.NewLRU())
	return c, Attach(c)
}

func addr(i int) uint64 { return uint64(i) * 64 }

func TestReadWriteAccounting(t *testing.T) {
	c, tk := newCache(4)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Z})              // read miss
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Z, Write: true}) // write hit
	if tk.ReadAccesses[stream.Z] != 1 || tk.WriteAccesses[stream.Z] != 1 {
		t.Errorf("accesses: r=%d w=%d", tk.ReadAccesses[stream.Z], tk.WriteAccesses[stream.Z])
	}
	if tk.ReadHits[stream.Z] != 0 || tk.WriteHits[stream.Z] != 1 {
		t.Errorf("hits: r=%d w=%d", tk.ReadHits[stream.Z], tk.WriteHits[stream.Z])
	}
	if tk.KindHitRate(stream.Z) != 0.5 {
		t.Errorf("hit rate = %v", tk.KindHitRate(stream.Z))
	}
}

func TestInterStreamConsumption(t *testing.T) {
	c, tk := newCache(4)
	// Produce a render target block, then consume it twice from the
	// sampler: the first texture hit is inter-stream consumption, the
	// second is an intra-stream hit on the now-texture block.
	c.Access(stream.Access{Addr: addr(1), Kind: stream.RT, Write: true})
	c.Access(stream.Access{Addr: addr(1), Kind: stream.Texture})
	c.Access(stream.Access{Addr: addr(1), Kind: stream.Texture})
	if tk.RTProduced != 1 || tk.RTConsumed != 1 {
		t.Errorf("produced=%d consumed=%d", tk.RTProduced, tk.RTConsumed)
	}
	if tk.InterTexHits != 1 || tk.IntraTexHits != 1 {
		t.Errorf("inter=%d intra=%d", tk.InterTexHits, tk.IntraTexHits)
	}
	if tk.RTConsumptionRate() != 1.0 {
		t.Errorf("consumption rate = %v", tk.RTConsumptionRate())
	}
}

func TestRTEvictionEndsTracking(t *testing.T) {
	c, tk := newCache(2)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.RT, Write: true})
	c.Access(stream.Access{Addr: addr(1), Kind: stream.Other})
	c.Access(stream.Access{Addr: addr(2), Kind: stream.Other}) // evicts RT block (LRU)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture})
	// The texture access misses (block evicted); no consumption.
	if tk.RTConsumed != 0 {
		t.Errorf("consumed after eviction = %d", tk.RTConsumed)
	}
	if tk.InterTexHits != 0 {
		t.Error("inter-stream hit counted across an eviction")
	}
}

func TestRTObjectReuseCountsProduction(t *testing.T) {
	c, tk := newCache(4)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture}) // texture block
	c.Access(stream.Access{Addr: addr(0), Kind: stream.RT, Write: true})
	if tk.RTProduced != 1 {
		t.Errorf("object reuse production = %d, want 1", tk.RTProduced)
	}
	// Blending rewrite of an RT block is not new production.
	c.Access(stream.Access{Addr: addr(0), Kind: stream.RT, Write: true})
	if tk.RTProduced != 1 {
		t.Error("RT rewrite counted as production")
	}
}

func TestTextureEpochs(t *testing.T) {
	c, tk := newCache(4)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture}) // fill -> E0 entry
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture}) // E0 hit -> E1
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture}) // E1 hit -> E2
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture}) // E2 hit -> E3
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture}) // E3 hit (lumped bucket)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture}) // E3+ hit (stays in bucket)
	if tk.TexEntries[0] != 1 || tk.TexEntries[1] != 1 || tk.TexEntries[2] != 1 {
		t.Errorf("entries = %v", tk.TexEntries)
	}
	if tk.TexEpochHits[0] != 1 || tk.TexEpochHits[1] != 1 || tk.TexEpochHits[2] != 1 || tk.TexEpochHits[3] != 2 {
		t.Errorf("epoch hits = %v", tk.TexEpochHits)
	}
}

func TestDeathRatios(t *testing.T) {
	c, tk := newCache(2)
	// Three texture blocks enter E0; one is reused (reaches E1).
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture})
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture})
	c.Access(stream.Access{Addr: addr(1), Kind: stream.Texture})
	c.Access(stream.Access{Addr: addr(2), Kind: stream.Texture})
	if got := tk.TexDeathRatio(0); got < 0.66 || got > 0.67 {
		t.Errorf("E0 death ratio = %v, want 2/3", got)
	}
	if got := tk.TexDeathRatio(1); got != 1.0 {
		t.Errorf("E1 death ratio = %v, want 1 (no E2 entries)", got)
	}
}

func TestZEpochs(t *testing.T) {
	c, tk := newCache(4)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Z, Write: true})
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Z})
	c.Access(stream.Access{Addr: addr(1), Kind: stream.Z, Write: true})
	if tk.ZEntries[0] != 2 || tk.ZEntries[1] != 1 {
		t.Errorf("z entries = %v", tk.ZEntries)
	}
	if got := tk.ZDeathRatio(0); got != 0.5 {
		t.Errorf("z E0 death = %v", got)
	}
}

func TestRTReadHitRate(t *testing.T) {
	c, tk := newCache(4)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.RT, Write: true})
	c.Access(stream.Access{Addr: addr(0), Kind: stream.RT}) // blend read, hit
	c.Access(stream.Access{Addr: addr(9), Kind: stream.RT}) // blend read, miss
	if got := tk.RTReadHitRate(); got != 0.5 {
		t.Errorf("rt read hit rate = %v", got)
	}
}

func TestBypassCounted(t *testing.T) {
	c, tk := newCache(4)
	c.SetBypass(stream.Display, true)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Display, Write: true})
	if tk.WriteAccesses[stream.Display] != 1 || tk.WriteHits[stream.Display] != 0 {
		t.Errorf("bypass accounting: %d/%d", tk.WriteAccesses[stream.Display], tk.WriteHits[stream.Display])
	}
}

func TestTexHitsAndKindTotals(t *testing.T) {
	c, tk := newCache(4)
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture})
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture})
	if tk.TexHits() != 1 {
		t.Errorf("TexHits = %d", tk.TexHits())
	}
	if tk.KindAccesses(stream.Texture) != 2 || tk.KindHits(stream.Texture) != 1 {
		t.Error("kind totals wrong")
	}
}

func TestDeathRatioEdgeCases(t *testing.T) {
	_, tk := newCache(2)
	if tk.TexDeathRatio(0) != 0 {
		t.Error("death ratio of empty epoch must be 0")
	}
	if tk.TexDeathRatio(-1) != 0 || tk.TexDeathRatio(99) != 0 {
		t.Error("out-of-range epochs must be 0")
	}
	if tk.RTConsumptionRate() != 0 {
		t.Error("consumption rate with no production must be 0")
	}
	if tk.KindHitRate(stream.Z) != 0 {
		t.Error("hit rate with no accesses must be 0")
	}
}

func TestForeignBlockAdoption(t *testing.T) {
	c, tk := newCache(4)
	// A Z block hit by the sampler (aliasing) is adopted as texture.
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Z, Write: true})
	c.Access(stream.Access{Addr: addr(0), Kind: stream.Texture})
	if tk.IntraTexHits != 1 {
		t.Error("foreign-block texture hit must count as intra-stream")
	}
	if tk.TexEntries[0] != 1 {
		t.Error("adopted block must enter E0")
	}
}
