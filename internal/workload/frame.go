package workload

import (
	"gspc/internal/memmap"
	"gspc/internal/pipeline"
	"gspc/internal/xrand"
)

// heapBase is where each frame's allocator starts. Address bits [27:14]
// form the SHiP-mem signature, so the base is chosen to keep surfaces in
// a realistic physical range.
const heapBase = 0x1000_0000

// BuildFrame constructs the pipeline frame for frame index of the
// application at the given linear scale. The construction is fully
// deterministic in (profile, index, scale).
func (p Profile) BuildFrame(index int, scale float64) *pipeline.Frame {
	return p.BuildFrameLayout(index, scale, memmap.LayoutRowMajor)
}

// BuildFrameLayout is BuildFrame with an explicit tile layout for the
// GPU-internal surfaces (depth, HiZ, render targets, textures). Morton
// layout gives screen-space neighborhoods compact memory footprints, as
// real depth/texture surfaces have; the back buffer stays row-major
// because display engines scan out linearly. Used by the abl-morton
// experiment.
func (p Profile) BuildFrameLayout(index int, scale float64, layout memmap.Layout) *pipeline.Frame {
	job := FrameJob{App: p, Index: index}
	rng := xrand.New(job.Seed())
	// Assets (texture pools, meshes, surfaces) persist across the frames
	// of an application, so every allocation-affecting choice draws from
	// an application-level generator: frames of the same application
	// place their surfaces and textures at identical addresses, enabling
	// warm-cache inter-frame studies (static textures are re-sampled
	// frame after frame).
	appRng := xrand.New(hashString(p.Abbrev) ^ 0xa55e75)

	w := scaleDim(p.Width, scale)
	h := scaleDim(p.Height, scale)
	alloc := memmap.NewAllocator(heapBase)
	surf := func(w, h, bpp int) *memmap.Surface {
		return memmap.NewSurfaceLayout(alloc, w, h, bpp, layout)
	}

	f := &pipeline.Frame{
		Width:  w,
		Height: h,
		Seed:   job.Seed() ^ 0xfeedface,
	}
	f.BackBuffer = memmap.NewSurface(alloc, w, h, 4)
	depth := surf(w, h, pipeline.ZBytesPerPixel)
	hiz := surf(ceilDiv(w, pipeline.HiZGranularity), ceilDiv(h, pipeline.HiZGranularity), pipeline.HiZBytesPerEntry)
	var stencil *memmap.Surface
	if p.StencilPassFrac > 0 {
		stencil = surf(w, h, 1)
	}

	// Shader constants / state region ("other" stream).
	constBuf := memmap.NewBuffer(alloc, 64, memmap.BlockSize)
	f.ConstBase = constBuf.Base
	f.ConstBlocks = constBuf.Count()

	// Static texture pool with full MIP chains.
	texDim := maxInt(64, scaleDim(p.StaticTexSize, scale))
	pool := make([]*memmap.Texture, p.StaticTexCount)
	for i := range pool {
		// Vary pool member sizes so the MIP footprint is heterogeneous.
		d := texDim >> uint(appRng.Intn(2))
		if d < 64 {
			d = 64
		}
		pool[i] = memmap.NewTextureLayout(alloc, d, d, 4, 8, layout)
	}

	// Meshes: a few shared geometry buffers per frame. Geometry density
	// scales with frame area.
	// geomDensity calibrates the vertex stream toward its measured share
	// of LLC traffic (~4%, Figure 4); profile MeshTris values describe
	// per-draw batches and several batches are fused per draw here.
	const geomDensity = 3
	area := scale * scale
	tris := maxInt(16, int(float64(p.MeshTris)*area)*geomDensity/2)
	if p.DirectX >= 11 {
		// Tessellation amplification (hull/tessellator/domain stages are
		// modelled as a geometry multiplier; DESIGN.md Section 5).
		tris = tris * 3 / 2
	}
	verts := maxInt(16, int(float64(p.VertexCount)*area)*geomDensity/2)
	meshes := make([]*pipeline.Mesh, 3)
	for i := range meshes {
		meshes[i] = &pipeline.Mesh{
			Vertices: memmap.NewBuffer(alloc, verts, 32), // pos+normal+uv
			Indices:  memmap.NewBuffer(alloc, tris*3, 4),
			TriCount: tris,
		}
	}
	pickMesh := func(r *xrand.RNG) *pipeline.Mesh { return meshes[r.Intn(len(meshes))] }

	// Dynamic surfaces produced during the frame and available for
	// sampling by later passes.
	var produced []*memmap.Surface

	// Pass schedule. Shadow and environment pre-passes are interleaved
	// with the main geometry passes the way engines schedule them: a
	// shadow map is rendered immediately before the geometry that samples
	// it, which keeps the production-to-consumption distance of dynamic
	// textures short — the property that makes render-target blocks
	// consumable from the LLC (Section 2.3).
	shadowDim := maxInt(64, scaleDim(p.ShadowMapSize, scale))
	makeShadow := func(s int) {
		srt := surf(shadowDim, shadowDim, 4)
		sz := surf(shadowDim, shadowDim, pipeline.ZBytesPerPixel)
		shz := surf(ceilDiv(shadowDim, pipeline.HiZGranularity), ceilDiv(shadowDim, pipeline.HiZGranularity), pipeline.HiZBytesPerEntry)
		pass := &pipeline.Pass{Target: srt, Depth: sz, HiZ: shz}
		prng := rng.Fork(uint64(100 + s))
		nd := jitterInt(prng, maxInt(2, p.DrawsPerGeomPass/2), 0.2)
		for d := 0; d < nd; d++ {
			pass.Draws = append(pass.Draws, &pipeline.Draw{
				Mesh:          pickMesh(prng),
				Coverage:      1.3 / float64(nd) * jitter(prng, 0.3),
				Patches:       2 + prng.Intn(3),
				ZPassRate:     0.75,
				HiZRejectRate: 0.1,
			})
		}
		f.Passes = append(f.Passes, pass)
		produced = append(produced, srt)
	}
	ew := maxInt(64, scaleDim(int(float64(p.Width)*p.EnvMapScale), scale))
	eh := maxInt(64, scaleDim(int(float64(p.Height)*p.EnvMapScale), scale))
	makeEnv := func(e int) {
		ert := surf(ew, eh, 4)
		ez := surf(ew, eh, pipeline.ZBytesPerPixel)
		ehz := surf(ceilDiv(ew, pipeline.HiZGranularity), ceilDiv(eh, pipeline.HiZGranularity), pipeline.HiZBytesPerEntry)
		pass := &pipeline.Pass{Target: ert, Depth: ez, HiZ: ehz}
		prng := rng.Fork(uint64(200 + e))
		nd := jitterInt(prng, maxInt(2, p.DrawsPerGeomPass*2/3), 0.2)
		for d := 0; d < nd; d++ {
			pass.Draws = append(pass.Draws, &pipeline.Draw{
				Mesh:          pickMesh(prng),
				Textures:      staticBindings(prng, pool, p, 1),
				Coverage:      float64(p.DepthComplexity) / float64(nd) * jitter(prng, 0.3),
				Patches:       2 + prng.Intn(3),
				ZPassRate:     p.ZPassRate,
				HiZRejectRate: p.HiZRejectRate,
			})
		}
		f.Passes = append(f.Passes, pass)
		produced = append(produced, ert)
	}

	// Main geometry passes render to an offscreen scene target when a
	// post chain follows, otherwise straight to the back buffer.
	var sceneRT *memmap.Surface
	if p.PostPasses > 0 {
		sceneRT = surf(w, h, 4)
	} else {
		sceneRT = f.BackBuffer
	}
	var gbuf []*memmap.Surface
	for m := 0; m < p.DeferredMRT; m++ {
		gbuf = append(gbuf, surf(w, h, 4))
	}
	// Light-prepass/deferred resolve buffers: each geometry pass is
	// followed by a full-screen lighting/resolve pass that consumes the
	// scene color (and G-buffer) written moments earlier. This is the
	// dominant steady source of render-target-to-texture consumption in
	// engines of this era and of the paper's inter-stream reuse.
	var lastResolve *memmap.Surface
	if p.PostPasses > 0 {
		lastResolve = surf(w, h, 4)
	}
	shadowsLeft, envsLeft := p.ShadowPasses, p.EnvPasses
	shadowID, envID := 0, 0
	for g := 0; g < p.GeomPasses; g++ {
		// Emit this pass's share of the remaining pre-passes first.
		remaining := p.GeomPasses - g
		for n := ceilDiv(shadowsLeft, remaining); n > 0; n-- {
			makeShadow(shadowID)
			shadowID++
			shadowsLeft--
		}
		for n := ceilDiv(envsLeft, remaining); n > 0; n-- {
			makeEnv(envID)
			envID++
			envsLeft--
		}

		prng := rng.Fork(uint64(300 + g))
		pass := &pipeline.Pass{Target: sceneRT, Depth: depth, HiZ: hiz}
		if g == 0 && len(gbuf) > 0 {
			pass.ExtraTargets = gbuf
		}
		if stencil != nil && prng.Bool(p.StencilPassFrac) {
			pass.Stencil = stencil
		}
		nd := jitterInt(prng, p.DrawsPerGeomPass, 0.2)
		for d := 0; d < nd; d++ {
			draw := &pipeline.Draw{
				Mesh:          pickMesh(prng),
				Textures:      staticBindings(prng, pool, p, maxInt(1, p.TexturesPerDraw-1)),
				Coverage:      p.DepthComplexity / float64(nd) * jitter(prng, 0.3),
				Patches:       3 + prng.Intn(4),
				ZPassRate:     clamp01(p.ZPassRate * jitter(prng, 0.1)),
				HiZRejectRate: p.HiZRejectRate,
			}
			// Transparent geometry comes last in a pass and blends.
			if d >= nd*3/5 && prng.Bool(p.BlendFraction) {
				draw.Blend = true
			}
			// Scene color readback: refraction, heat distortion, soft
			// particles, and decals sample the scene rendered so far —
			// an immediate render-target-to-texture consume and the
			// steadiest source of inter-stream reuse within a pass.
			if sceneRT != f.BackBuffer && prng.Bool(p.SceneReadFraction) {
				draw.Textures = append(draw.Textures, pipeline.TextureBinding{
					Texture: memmap.TextureFromSurface(sceneRT),
					Scale:   1.0,
					Aligned: true,
				})
				pass.SamplesDynamic = true
			}
			// Dynamic texturing: sample a recently produced render
			// target (shadow map, reflection map) — the paper's primary
			// inter-stream reuse source. Recent surfaces are preferred,
			// as engines consume a shadow map in the very next pass.
			if len(produced) > 0 && prng.Bool(p.DynamicTexFraction) {
				src := produced[len(produced)-1-prng.Intn(minInt(2, len(produced)))]
				// Each object projects to its own region of the shadow or
				// reflection map, so consumers read largely disjoint
				// windows and a produced block is consumed about once —
				// the one-shot inter-stream reuse the paper measures.
				draw.Textures = append(draw.Textures, pipeline.TextureBinding{
					Texture: memmap.TextureFromSurface(src),
					Scale:   float64(src.Width) / float64(w),
					Aligned: true,
					U0:      prng.Float64(),
					V0:      prng.Float64(),
				})
				pass.SamplesDynamic = true
			}
			pass.Draws = append(pass.Draws, draw)
		}
		f.Passes = append(f.Passes, pass)

		if p.PostPasses > 0 {
			rdraw := &pipeline.Draw{
				Mesh:     meshes[0],
				Coverage: 1.0,
				Patches:  1,
				Textures: []pipeline.TextureBinding{{
					Texture: memmap.TextureFromSurface(sceneRT),
					Scale:   1.0,
					Aligned: true,
				}},
			}
			for _, gb := range gbuf {
				rdraw.Textures = append(rdraw.Textures, pipeline.TextureBinding{
					Texture: memmap.TextureFromSurface(gb),
					Scale:   1.0,
					Aligned: true,
				})
			}
			f.Passes = append(f.Passes, &pipeline.Pass{
				Target:         lastResolve,
				Draws:          []*pipeline.Draw{rdraw},
				SamplesDynamic: true,
			})
		}
	}
	if lastResolve != nil {
		produced = append(produced, lastResolve)
	}
	if sceneRT != f.BackBuffer {
		produced = append(produced, sceneRT)
	}
	produced = append(produced, gbuf...)

	// 4. Post-processing: each post stage is a bloom-style triple at a
	// reduced resolution — downsample, horizontal blur, vertical blur —
	// where every pass fully consumes the surface produced by the pass
	// immediately before it (the vertical blur writes back into the
	// level's downsample buffer, reusing the render target object). Games
	// of this era issue dozens of such small render-to-texture hops per
	// frame; they are the dominant source of tightly-spaced render-
	// target-to-texture consumption in the LLC. A final full-resolution
	// combine reads the lit scene and the processed chain into the back
	// buffer.
	if p.PostPasses > 0 {
		fullScreen := func(target *memmap.Surface, srcs ...*memmap.Surface) {
			draw := &pipeline.Draw{Mesh: meshes[0], Coverage: 1.0, Patches: 1}
			for _, sc := range srcs {
				draw.Textures = append(draw.Textures, pipeline.TextureBinding{
					Texture: memmap.TextureFromSurface(sc),
					Scale:   float64(sc.Width) / float64(target.Width),
					Aligned: true,
				})
			}
			f.Passes = append(f.Passes, &pipeline.Pass{
				Target:         target,
				Draws:          []*pipeline.Draw{draw},
				SamplesDynamic: true,
			})
		}
		lit := sceneRT
		if lastResolve != nil {
			lit = lastResolve
		}
		src := lit
		var chainTops []*memmap.Surface
		for q := 0; q < p.PostPasses; q++ {
			dw := maxInt(64, (w>>uint(q+1)+7)&^7)
			dh := maxInt(64, (h>>uint(q+1)+7)&^7)
			down := surf(dw, dh, 4)
			tmp := surf(dw, dh, 4)
			fullScreen(down, src) // downsample
			fullScreen(tmp, down) // horizontal blur
			fullScreen(down, tmp) // vertical blur back into the level buffer
			produced = append(produced, down)
			chainTops = append(chainTops, down)
			src = down
		}
		// Final combine: lit scene + the blurred chain levels.
		combineSrcs := append([]*memmap.Surface{lit}, chainTops...)
		if len(combineSrcs) > p.PostChainTextures+1 {
			combineSrcs = combineSrcs[:p.PostChainTextures+1]
		}
		fullScreen(f.BackBuffer, combineSrcs...)
	}

	return f
}

// staticBindings picks n static textures with pseudo-random sampling
// scales (driving MIP selection) from the pool.
func staticBindings(rng *xrand.RNG, pool []*memmap.Texture, p Profile, n int) []pipeline.TextureBinding {
	if len(pool) == 0 || n <= 0 {
		return nil
	}
	tb := make([]pipeline.TextureBinding, 0, n)
	for i := 0; i < n; i++ {
		// Scales near one: meshes are UV-mapped so a draw's footprint
		// stays within its MIP level rather than wrapping around coarse
		// levels (wrapping would manufacture artificial near reuse).
		tb = append(tb, pipeline.TextureBinding{
			Texture:   pool[rng.Intn(len(pool))],
			Scale:     rng.Range(0.8, 2.2),
			Trilinear: rng.Bool(p.TrilinearFraction),
		})
	}
	return tb
}

// scaleDim scales a full-resolution dimension, keeping it a multiple of 8
// (the HiZ granularity) and at least 64.
func scaleDim(d int, scale float64) int {
	v := int(float64(d) * scale)
	if v < 64 {
		v = 64
	}
	return (v + 7) &^ 7
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// jitter returns a multiplicative factor in [1-f, 1+f).
func jitter(rng *xrand.RNG, f float64) float64 { return rng.Range(1-f, 1+f) }

// jitterInt applies jitter to an integer count, keeping it >= 1.
func jitterInt(rng *xrand.RNG, n int, f float64) int {
	v := int(float64(n) * jitter(rng, f))
	if v < 1 {
		v = 1
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
