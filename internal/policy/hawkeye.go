package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// Hawkeye is a stream-trained variant of the OPT-learning policy of Jain
// and Lin (ISCA 2016), included as a "what would a modern policy do"
// extension beyond the paper's 2013 baselines. Sampled sets reconstruct
// Belady's optimal decisions online with an OPTgen occupancy vector; each
// reconstructed hit or miss trains a per-stream counter (graphics
// fixed-function units have no program counters, so the stream kind
// plays the role of Hawkeye's PC signature). Fills of OPT-friendly
// streams insert protected, OPT-averse streams insert distant; victims
// prefer averse blocks.
type Hawkeye struct {
	rripBase
	sets int

	// Per-stream training counters (positive = cache-friendly).
	train [stream.NumKinds]int

	// OPTgen state for sampled sets.
	gens map[int]*optgen
}

var _ cachesim.Policy = (*Hawkeye)(nil)

// hawkeyeSampleEvery selects one OPTgen set per this many sets.
const hawkeyeSampleEvery = 32

// optgenWindow is the reconstruction horizon in set-accesses.
const optgenWindow = 128

// trainMax bounds the per-stream counters.
const trainMax = 31

type optgen struct {
	ways int
	// time is the set-local access clock.
	time int64
	// occupancy[t % optgenWindow] counts the liveness intervals covering
	// set-time t.
	occupancy [optgenWindow]uint8
	// last maps block number -> (last access time, stream of that access).
	last map[uint64]optgenEntry
}

type optgenEntry struct {
	t    int64
	kind stream.Kind
}

// access reconstructs OPT's decision for a touch of block bn and returns
// the stream to train and whether OPT would have hit (valid only when
// trainable is true). Blocks that age out of the reconstruction window
// without a re-touch were OPT misses; their streams are detrained via
// the expired callback.
func (g *optgen) access(bn uint64, k stream.Kind, expired func(stream.Kind)) (trainKind stream.Kind, optHit, trainable bool) {
	defer func() {
		g.last[bn] = optgenEntry{t: g.time, kind: k}
		g.time++
		g.occupancy[g.time%optgenWindow] = 0
		if len(g.last) > 2*optgenWindow {
			for b, e := range g.last {
				if g.time-e.t > optgenWindow {
					expired(e.kind)
					delete(g.last, b)
				}
			}
		}
	}()
	prev, ok := g.last[bn]
	if !ok || g.time-prev.t >= optgenWindow {
		return 0, false, false
	}
	// OPT caches the interval [prev.t, time) iff every covered slot has
	// spare capacity.
	for t := prev.t; t < g.time; t++ {
		if g.occupancy[t%optgenWindow] >= uint8(g.ways) {
			return prev.kind, false, true
		}
	}
	for t := prev.t; t < g.time; t++ {
		g.occupancy[t%optgenWindow]++
	}
	return prev.kind, true, true
}

// NewHawkeye returns a stream-trained Hawkeye policy with a 2-bit RRPV.
func NewHawkeye() *Hawkeye {
	p := &Hawkeye{}
	p.init(2)
	return p
}

// Name implements cachesim.Policy.
func (p *Hawkeye) Name() string { return "Hawkeye" }

// Reset implements cachesim.Policy.
func (p *Hawkeye) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.sets = sets
	p.train = [stream.NumKinds]int{}
	p.gens = make(map[int]*optgen)
}

func (p *Hawkeye) sample(set int, a stream.Access) {
	if set%hawkeyeSampleEvery != 0 {
		return
	}
	g := p.gens[set]
	if g == nil {
		g = &optgen{ways: p.ways, last: make(map[uint64]optgenEntry)}
		p.gens[set] = g
	}
	kind, optHit, ok := g.access(a.Addr>>6, a.Kind, func(k stream.Kind) {
		if p.train[k] > -trainMax {
			p.train[k]--
		}
	})
	if !ok {
		return
	}
	if optHit {
		if p.train[kind] < trainMax {
			p.train[kind]++
		}
	} else {
		if p.train[kind] > -trainMax {
			p.train[kind]--
		}
	}
}

// Friendly reports whether the stream is currently predicted
// cache-friendly; exported for tests.
func (p *Hawkeye) Friendly(k stream.Kind) bool { return p.train[k] >= 0 }

// Hit implements cachesim.Policy.
func (p *Hawkeye) Hit(set, way int, a stream.Access) {
	p.sample(set, a)
	if p.Friendly(a.Kind) {
		p.rrpv[set*p.ways+way] = 0
	} else {
		p.rrpv[set*p.ways+way] = p.max
	}
}

// Fill implements cachesim.Policy.
func (p *Hawkeye) Fill(set, way int, a stream.Access) {
	p.sample(set, a)
	v := p.max
	if p.Friendly(a.Kind) {
		v = 0
	}
	p.insert(set, way, v, a.Kind)
}

// Victim implements cachesim.Policy.
func (p *Hawkeye) Victim(set int, a stream.Access) int { return p.victim(set) }

// Evict implements cachesim.Policy.
func (p *Hawkeye) Evict(set, way int) { p.rrpv[set*p.ways+way] = p.max }
