package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gspc/internal/service"
)

// MemberState is a member's place in the routing lifecycle.
type MemberState string

// Member lifecycle states.
const (
	// StateAlive members receive forwarded work.
	StateAlive MemberState = "alive"
	// StateDead members failed enough consecutive health checks (or a
	// forward) to be routed around; the ring excludes them until a
	// health check succeeds again.
	StateDead MemberState = "dead"
	// StateDraining members asked to leave (their /readyz reports
	// draining, or an operator drained them through the coordinator):
	// they stop receiving new runs but still answer status queries.
	StateDraining MemberState = "draining"
)

// MemberSpec names one gspcd engine the coordinator fronts.
type MemberSpec struct {
	// Name is the stable member identity; run ids are qualified with it
	// ("run-000017@gspc-1") and ring placement hashes it, so renaming a
	// member moves its keys.
	Name string `json:"name"`
	// URL is the member's base serving address, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
}

// Member is the coordinator's view of one gspcd engine: its spec plus
// the mutable health state the checker maintains.
type Member struct {
	Spec MemberSpec

	mu         sync.Mutex
	state      MemberState
	adminDrain bool // drained via the coordinator admin API
	fails      int  // consecutive failed health checks/forwards
	lastErr    string
	ready      bool
	readyInfo  service.ReadyInfo
	lastCheck  time.Time
}

// MemberStatus is the queryable snapshot of a member
// (GET /v1/cluster/members).
type MemberStatus struct {
	MemberSpec
	State      MemberState       `json:"state"`
	AdminDrain bool              `json:"admin_drain,omitempty"`
	Ready      bool              `json:"ready"`
	ReadyInfo  service.ReadyInfo `json:"ready_info"`
	LastError  string            `json:"last_error,omitempty"`
	LastCheck  time.Time         `json:"last_check,omitempty"`
}

func newMember(spec MemberSpec) *Member {
	// Members start alive and ready: the first health sweep corrects the
	// optimism within one interval, while starting dead would refuse all
	// traffic until the loop's first pass.
	return &Member{Spec: spec, state: StateAlive, ready: true}
}

// snapshot captures the member under its lock.
func (m *Member) snapshot() MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemberStatus{
		MemberSpec: m.Spec,
		State:      m.state,
		AdminDrain: m.adminDrain,
		Ready:      m.ready,
		ReadyInfo:  m.readyInfo,
		LastError:  m.lastErr,
		LastCheck:  m.lastCheck,
	}
}

// routable reports whether new runs may be placed on the member: alive
// and not draining (self-reported or operator-imposed).
func (m *Member) routable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == StateAlive && !m.adminDrain
}

// queryable reports whether status/trace reads may be forwarded: any
// state but dead — a draining member still answers for its runs.
func (m *Member) queryable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state != StateDead
}

// saturated reports an alive member whose last /readyz said unready for
// load reasons (queue or breakers) while not draining: the key stays
// sticky to it, but the coordinator will try replica cache probes first.
func (m *Member) saturated() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == StateAlive && !m.ready && !m.readyInfo.Draining
}

// noteForwardFailure records a transport-level forward error; it
// reports whether the member just transitioned to dead (routing must
// rebuild). Forward failures are unambiguous — the connection refused —
// so one strike kills: the health loop revives the member when it
// answers again.
func (m *Member) noteForwardFailure(err error) (died bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fails++
	m.lastErr = err.Error()
	if m.state != StateDead {
		m.state = StateDead
		return true
	}
	return false
}

// applyCheck folds one health-check outcome into the member state and
// reports whether routability changed. deadAfter is the consecutive
// check failures tolerated before the member is declared dead.
func (m *Member) applyCheck(ready bool, info service.ReadyInfo, err error, deadAfter int) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wasRoutable := m.state == StateAlive && !m.adminDrain
	m.lastCheck = time.Now()
	if err != nil {
		m.fails++
		m.lastErr = err.Error()
		if m.fails >= deadAfter {
			m.state = StateDead
		}
	} else {
		m.fails = 0
		m.lastErr = ""
		m.ready = ready
		m.readyInfo = info
		if info.Draining {
			m.state = StateDraining
		} else {
			m.state = StateAlive
		}
	}
	return wasRoutable != (m.state == StateAlive && !m.adminDrain)
}

// setAdminDrain flips the operator drain bit, reporting whether
// routability changed.
func (m *Member) setAdminDrain(drain bool) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.adminDrain == drain {
		return false
	}
	m.adminDrain = drain
	return m.state == StateAlive
}

// checkMember performs one health check against the member's /readyz,
// decoding the load-snapshot body gspcd serves. A 200 means ready; 503
// with a parseable body is an alive-but-unready report (draining,
// saturated, broken); anything else is a check failure.
func checkMember(ctx context.Context, client *http.Client, m *Member) (bool, service.ReadyInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.Spec.URL+"/readyz", nil)
	if err != nil {
		return false, service.ReadyInfo{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, service.ReadyInfo{}, err
	}
	defer resp.Body.Close()
	var info service.ReadyInfo
	if derr := json.NewDecoder(resp.Body).Decode(&info); derr != nil {
		return false, service.ReadyInfo{}, fmt.Errorf("readyz status %d: %v", resp.StatusCode, derr)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return true, info, nil
	case http.StatusServiceUnavailable:
		return false, info, nil
	default:
		return false, info, fmt.Errorf("readyz status %d", resp.StatusCode)
	}
}
