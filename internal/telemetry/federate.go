package telemetry

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// FederatedScrape is one member's raw /metrics exposition, tagged with
// the node name to inject.
type FederatedScrape struct {
	Node string
	Body []byte
}

// federatedFamily accumulates one metric family across scrapes: the
// first HELP/TYPE metadata seen wins, series keep scrape order.
type federatedFamily struct {
	name   string
	help   string
	typ    string
	series []string
}

// Federate merges Prometheus text expositions from several nodes into
// one, prefixing every series' label set with node="<name>". Families
// are deduplicated by name (first HELP/TYPE wins) and emitted in sorted
// order; within a family, series keep scrape order with scrapes in the
// order given — so a fixed node list yields a byte-deterministic
// exposition. Cardinality is bounded by construction: the output is
// exactly the union of the member expositions (each itself bounded)
// times nothing — one extra label, no new series.
func Federate(scrapes []FederatedScrape) []byte {
	fams := map[string]*federatedFamily{}
	var order []string
	fam := func(name string) *federatedFamily {
		f := fams[name]
		if f == nil {
			f = &federatedFamily{name: name, typ: "untyped"}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, sc := range scrapes {
		var cur *federatedFamily
		for _, raw := range strings.Split(string(sc.Body), "\n") {
			line := strings.TrimSpace(raw)
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				kind, name, rest, ok := parseComment(line)
				if !ok {
					continue
				}
				cur = fam(name)
				switch kind {
				case "HELP":
					if cur.help == "" {
						cur.help = rest
					}
				case "TYPE":
					if cur.typ == "untyped" && rest != "" {
						cur.typ = rest
					}
				}
				continue
			}
			base := seriesName(line)
			if base == "" {
				continue
			}
			f := cur
			// Histogram/summary series (_bucket/_sum/_count) belong to the
			// preceding header family; anything else that doesn't match the
			// current header starts its own implicit family.
			if f == nil || (base != f.name && !strings.HasPrefix(base, f.name+"_")) {
				f = fam(base)
			}
			f.series = append(f.series, injectNodeLabel(line, sc.Node))
		}
	}
	sort.Strings(order)
	var b bytes.Buffer
	for _, name := range order {
		f := fams[name]
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

// parseComment decodes "# HELP name rest" / "# TYPE name rest" lines.
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	kind, name = fields[1], fields[2]
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, true
}

// seriesName extracts the metric name of a sample line.
func seriesName(line string) string {
	end := strings.IndexAny(line, "{ ")
	if end <= 0 {
		return ""
	}
	return line[:end]
}

// injectNodeLabel rewrites one sample line so node="<name>" is the
// first label. The '{' (when present) necessarily precedes any label
// value, so indexing the first one is safe.
func injectNodeLabel(line, node string) string {
	esc := escapeLabel(node)
	if i := strings.IndexByte(line, '{'); i >= 0 {
		rest := line[i+1:]
		if strings.HasPrefix(rest, "}") { // empty label set: name{} value
			return line[:i] + `{node="` + esc + `"` + rest
		}
		return line[:i] + `{node="` + esc + `",` + rest
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return line
	}
	return line[:i] + `{node="` + esc + `"}` + line[i:]
}
