// Capacity sweep: how the policies scale from small to large LLCs
// (the paper's 8 MB vs 16 MB study of Figures 15 and 16, extended to a
// full sweep). Run on a handful of suite frames.
//
//	go run ./examples/capacity
package main

import (
	"fmt"

	"gspc/internal/belady"
	"gspc/internal/cachesim"
	"gspc/internal/core"
	"gspc/internal/policy"
	"gspc/internal/stream"
	"gspc/internal/trace"
	"gspc/internal/workload"
)

func main() {
	// One frame from each of four applications, quarter scale.
	var traces [][]stream.Access
	for _, ab := range []string{"AssnCreed", "Civilization", "Dirt", "Unigine"} {
		p, _ := workload.ProfileByAbbrev(ab)
		traces = append(traces, trace.GenerateFrame(workload.FrameJob{App: p, Index: 0}, 0.25))
	}

	fmt.Printf("%-8s %10s %10s %10s %10s\n", "LLC", "DRRIP", "GSPC", "Belady", "GSPC/DRRIP")
	for _, kb := range []int{256, 512, 768, 1024, 1536, 2048} {
		geom := cachesim.Geometry{SizeBytes: kb << 10, Ways: 16, BlockSize: 64}
		var mD, mG, mO int64
		for _, tr := range traces {
			mD += run(tr, policy.NewDRRIP(2), geom)
			mG += run(tr, core.New(core.DefaultParams(core.VariantGSPC)), geom)
			mO += run(tr, belady.NewOPT(belady.NextUse(tr, 6)), geom)
		}
		fmt.Printf("%5dKB %10d %10d %10d %9.3f\n", kb, mD, mG, mO, float64(mG)/float64(mD))
	}
	fmt.Println("\n(miss counts summed over 4 frames; the GSPC/DRRIP ratio is the paper's Figure 12 metric)")
}

func run(tr []stream.Access, pol cachesim.Policy, geom cachesim.Geometry) int64 {
	c := cachesim.New(geom, pol)
	c.SetBypass(stream.Display, true)
	for _, a := range tr {
		c.Access(a)
	}
	return c.Stats.Misses
}
