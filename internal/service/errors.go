package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gspc/internal/harness"
)

// Category partitions job failures into the classes clients act on
// differently: fix the request (invalid), retry later (timeout,
// internal), or report a server bug (panic). Categories are stable wire
// strings; server.go maps each to one HTTP status code.
type Category string

// Failure categories.
const (
	// CategoryInvalid: the request can never succeed as written (400).
	CategoryInvalid Category = "invalid"
	// CategoryTimeout: the job's deadline expired before it finished (504).
	CategoryTimeout Category = "timeout"
	// CategoryCanceled: every interested caller left before the job ran (504).
	CategoryCanceled Category = "canceled"
	// CategoryPanic: the experiment panicked; the worker recovered (500).
	CategoryPanic Category = "panic"
	// CategoryInternal: any other runner failure (500).
	CategoryInternal Category = "internal"
)

// Error is the typed, JSON-serializable form of a job failure. It is
// shared verbatim by every coalesced caller of the job — the category
// describes the job's fate, never one caller's context — and it travels
// in JobStatus so async pollers see the same classification synchronous
// callers do.
type Error struct {
	Category Category `json:"category"`
	Message  string   `json:"message"`
	// Stack is the recovered goroutine stack for panic failures.
	Stack string `json:"stack,omitempty"`

	retryable bool
	cause     error
}

// Error implements error.
func (e *Error) Error() string { return "service: " + string(e.Category) + ": " + e.Message }

// Unwrap exposes the originating error so errors.Is/As see through the
// classification.
func (e *Error) Unwrap() error { return e.cause }

// Retryable reports whether re-running the job could plausibly succeed
// (transient faults). Deterministic failures — invalid requests,
// deadline overruns, panics — are never retried.
func (e *Error) Retryable() bool { return e.retryable }

// retryabler is the marker interface transient errors implement (e.g.
// internal/faultinject.TransientError).
type retryabler interface{ Retryable() bool }

// classify folds an arbitrary runner error into a typed Error. It is
// idempotent: an already-typed error passes through unchanged.
func classify(err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	var bad *BadRequestError
	var unknown *harness.UnknownExperimentError
	switch {
	case errors.As(err, &bad), errors.As(err, &unknown):
		return &Error{Category: CategoryInvalid, Message: err.Error(), cause: err}
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Category: CategoryTimeout, Message: err.Error(), cause: err}
	case errors.Is(err, context.Canceled):
		return &Error{Category: CategoryCanceled, Message: err.Error(), cause: err}
	}
	var r retryabler
	if errors.As(err, &r) && r.Retryable() {
		return &Error{Category: CategoryInternal, Message: err.Error(), retryable: true, cause: err}
	}
	return &Error{Category: CategoryInternal, Message: err.Error(), cause: err}
}

// CircuitOpenError fast-fails a submission while the experiment's
// circuit breaker is open: the engine refuses to burn a worker on a
// request that has been failing consistently. HTTP handlers map it to
// 503 with a Retry-After of RetryAfter rounded up to whole seconds.
type CircuitOpenError struct {
	Experiment string
	RetryAfter time.Duration
}

// Error implements error.
func (e *CircuitOpenError) Error() string {
	return fmt.Sprintf("service: circuit breaker open for experiment %q (retry after %s)",
		e.Experiment, e.RetryAfter)
}

// MemoryPressureError refuses a submission because the memory governor's
// degradation ladder has passed the point of accepting this request: at
// the stale-only rung a request with no stale fallback fails with it
// (HTTP 503), at the shed rung every non-cached request does (HTTP 429).
// Both carry Retry-After of RetryAfter rounded up to whole seconds — the
// ladder cannot step down faster than its hold-down period, so earlier
// retries are wasted.
type MemoryPressureError struct {
	// Rung names the ladder rung that refused the request.
	Rung string
	// RetryAfter is the governor's hold-down period.
	RetryAfter time.Duration
	// StaleOnly marks the stale-only refusal (no stale result to serve),
	// mapped to 503; false is the shed rung's flat refusal, mapped to 429.
	StaleOnly bool
}

// Error implements error.
func (e *MemoryPressureError) Error() string {
	if e.StaleOnly {
		return fmt.Sprintf(
			"service: memory pressure (rung %s): serving cached results only and no stale result is available (retry after %s)",
			e.Rung, e.RetryAfter)
	}
	return fmt.Sprintf("service: memory pressure (rung %s): shedding new work (retry after %s)",
		e.Rung, e.RetryAfter)
}
