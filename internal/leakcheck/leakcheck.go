// Package leakcheck is a dependency-free goroutine hygiene probe shared
// by the service, cluster, and swarm test suites and by the soak
// harness. It scans runtime stack dumps for goroutines that run code
// from this module (any gspc/internal/ frame) and answers two
// questions:
//
//   - Leak: are more module goroutines alive now than at a recorded
//     baseline? Stdlib helpers (net/http keep-alives, test machinery)
//     are invisible to the filter, so growth means the engine itself
//     leaked.
//
//   - Partial deadlock: is any module goroutine parked on a
//     synchronization primitive — a mutex, a channel operation, a
//     WaitGroup — at the same site for longer than a threshold? This is
//     the stack-scan analogue of Golf's runtime detection of partially
//     deadlocked goroutines: double-locks park in sync.Mutex.Lock
//     forever, abandoned channel waiters park in chan send/receive.
//     Legitimate long waiters (an idle worker ranging over its queue)
//     are excused by an allowlist of frame substrings, never by
//     loosening the states.
//
// The Monitor tracks blocked-site residency across explicit Sample
// calls, so a harness that samples every few hundred milliseconds gets
// sub-minute detection (the runtime's own "N minutes" annotation is far
// too coarse for a 2-minute soak).
//
// The Monitor also mirrors the goroutine baseline in byte space: a
// post-GC heap baseline (HeapBaseline), a high-water mark fed by cheap
// HeapSample reads, and a bounded-growth verdict (HeapGrowth) that
// forces collections while polling — so a soak can assert "the heap
// came back down" with the same shape it asserts "the goroutines came
// back down".
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultFilter is the stack substring that marks a goroutine as owned
// by this module.
const DefaultFilter = "gspc/internal/"

// blockedStates are the runtime wait reasons that indicate a goroutine
// parked on a synchronization primitive. "select", "sleep", and "IO
// wait" are deliberately absent: ticker loops, backoff timers, and
// listeners legitimately park there forever.
var blockedStates = map[string]bool{
	"chan send":               true,
	"chan receive":            true,
	"chan send (nil chan)":    true,
	"chan receive (nil chan)": true,
	"sync.Mutex.Lock":         true,
	"sync.RWMutex.Lock":       true,
	"sync.RWMutex.RLock":      true,
	"sync.WaitGroup.Wait":     true,
	"sync.Cond.Wait":          true,
	"semacquire":              true,
}

// Goroutine is one parsed stack-dump record.
type Goroutine struct {
	// ID is the runtime goroutine id from the dump header.
	ID int64
	// State is the wait reason ("running", "chan receive", ...), with
	// the runtime's ", N minutes" suffix stripped.
	State string
	// WaitMinutes is the runtime's own coarse wait annotation (0 when
	// the goroutine has been parked under a minute).
	WaitMinutes int
	// Site is the innermost non-runtime function, the stable identity of
	// where the goroutine is parked.
	Site string
	// Stack is the raw dump record, for failure messages.
	Stack string
}

// Blocked reports whether the goroutine is parked on a synchronization
// primitive (as opposed to running, in a select, sleeping, or in I/O).
func (g Goroutine) Blocked() bool { return blockedStates[g.State] }

// parseDump splits one runtime.Stack(buf, true) dump into records,
// dropping the first (the calling goroutine).
func parseDump(dump string) []Goroutine {
	var out []Goroutine
	for i, rec := range strings.Split(dump, "\n\n") {
		if i == 0 || rec == "" {
			continue
		}
		out = append(out, parseRecord(rec))
	}
	return out
}

// parseRecord decodes one "goroutine N [state, K minutes]:" record.
func parseRecord(rec string) Goroutine {
	g := Goroutine{Stack: rec}
	head, rest, _ := strings.Cut(rec, "\n")
	if open := strings.IndexByte(head, '['); open >= 0 && strings.HasSuffix(head, "]:") {
		state := head[open+1 : len(head)-2]
		if s, mins, ok := strings.Cut(state, ", "); ok {
			state = s
			g.WaitMinutes, _ = strconv.Atoi(strings.TrimSuffix(mins, " minutes"))
		}
		g.State = state
		fields := strings.Fields(head[:open])
		if len(fields) >= 2 {
			g.ID, _ = strconv.ParseInt(fields[1], 10, 64)
		}
	}
	// The site is the first function line that isn't runtime or sync
	// plumbing — the caller that owns the park, not the primitive's own
	// slow path. Function lines alternate with "\tfile:line" lines.
	for _, line := range strings.Split(rest, "\n") {
		if strings.HasPrefix(line, "\t") || line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "runtime."),
			strings.HasPrefix(line, "sync."),
			strings.HasPrefix(line, "internal/sync."),
			strings.HasPrefix(line, "internal/runtime"):
			continue
		}
		g.Site = line
		break
	}
	return g
}

// Stacks returns every live goroutine (except the caller) whose stack
// contains filter; an empty filter matches all.
func Stacks(filter string) []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []Goroutine
	for _, g := range parseDump(string(buf)) {
		if filter == "" || strings.Contains(g.Stack, filter) {
			out = append(out, g)
		}
	}
	return out
}

// Options shapes a Monitor.
type Options struct {
	// Filter is the stack substring that marks module goroutines.
	// Default DefaultFilter.
	Filter string
	// Allow lists site substrings excused from blocked-goroutine
	// verdicts: known-legitimate forever-waiters, e.g. an idle worker
	// parked receiving from its queue. Growth accounting still sees them.
	Allow []string
}

// blockedKey identifies one parked goroutine at one site: if the same
// goroutine is found parked in the same state at the same site across
// two samples, it has been stuck the whole time (goroutine ids are
// never reused while the goroutine lives).
type blockedKey struct {
	id    int64
	state string
	site  string
}

// Monitor tracks module-goroutine count against a baseline and
// blocked-site residency across samples.
type Monitor struct {
	opts Options

	mu       sync.Mutex
	baseline int
	first    map[blockedKey]time.Time

	// Heap-delta tracking, the byte-space mirror of the goroutine
	// baseline: HeapBaseline records a post-GC live heap, HeapSample
	// tracks the high-water mark, HeapGrowth asserts bounded growth.
	heapBaseline int64
	heapHigh     int64
}

// NewMonitor builds a monitor. Call Baseline once the system under test
// is booted and idle, Sample periodically while it runs, and
// Growth/Blocked to read verdicts.
func NewMonitor(opts Options) *Monitor {
	if opts.Filter == "" {
		opts.Filter = DefaultFilter
	}
	return &Monitor{opts: opts, first: map[blockedKey]time.Time{}}
}

// Baseline records the current module-goroutine count as the reference
// for Growth and returns it.
func (m *Monitor) Baseline() int {
	n := len(Stacks(m.opts.Filter))
	m.mu.Lock()
	m.baseline = n
	m.mu.Unlock()
	return n
}

// Sample scans once, updating blocked-site residency: parked module
// goroutines keep their first-seen time while they stay at the same
// site; everything else is forgotten. Returns the live module count.
func (m *Monitor) Sample() int {
	now := time.Now()
	stacks := Stacks(m.opts.Filter)
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[blockedKey]bool{}
	for _, g := range stacks {
		if !g.Blocked() {
			continue
		}
		k := blockedKey{id: g.ID, state: g.State, site: g.Site}
		seen[k] = true
		if _, ok := m.first[k]; !ok {
			m.first[k] = now
		}
	}
	for k := range m.first {
		if !seen[k] {
			delete(m.first, k)
		}
	}
	return len(stacks)
}

// Blocked returns the module goroutines that have been parked on a
// synchronization primitive at the same site for at least threshold
// (measured across Sample calls), excluding allowlisted sites. The
// caller must have been Sampling at a period well under threshold.
func (m *Monitor) Blocked(threshold time.Duration) []Goroutine {
	now := time.Now()
	stacks := Stacks(m.opts.Filter)
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Goroutine
	for _, g := range stacks {
		if !g.Blocked() || m.allowed(g.Site) {
			continue
		}
		k := blockedKey{id: g.ID, state: g.State, site: g.Site}
		first, ok := m.first[k]
		if ok && now.Sub(first) >= threshold {
			out = append(out, g)
		}
	}
	return out
}

func (m *Monitor) allowed(site string) bool {
	for _, a := range m.opts.Allow {
		if a != "" && strings.Contains(site, a) {
			return true
		}
	}
	return false
}

// Growth polls until the module-goroutine count drops back to the
// baseline or the window expires; it returns the excess count (0 when
// clean) and the offending stacks. The poll absorbs legitimate
// wind-down latency (connections draining, Shutdown finishing), the
// same way the old per-test leak checker did.
func (m *Monitor) Growth(window time.Duration) (int, []Goroutine) {
	m.mu.Lock()
	base := m.baseline
	m.mu.Unlock()
	deadline := time.Now().Add(window)
	for {
		stacks := Stacks(m.opts.Filter)
		if len(stacks) <= base {
			return 0, nil
		}
		if time.Now().After(deadline) {
			return len(stacks) - base, stacks
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// HeapBaseline garbage-collects and records the current live heap as
// the reference for HeapGrowth, returning it. Call it once the system
// under test is booted and idle, like Baseline.
func (m *Monitor) HeapBaseline() int64 {
	n := settledHeap()
	m.mu.Lock()
	m.heapBaseline = n
	m.mu.Unlock()
	return n
}

// HeapSample reads the live heap (no forced GC — cheap enough for a
// soak's per-iteration cadence) and tracks the high-water mark. Returns
// the current reading.
func (m *Monitor) HeapSample() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := int64(ms.HeapAlloc)
	m.mu.Lock()
	if n > m.heapHigh {
		m.heapHigh = n
	}
	m.mu.Unlock()
	return n
}

// HeapHighWater returns the largest heap seen by HeapSample.
func (m *Monitor) HeapHighWater() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.heapHigh
}

// HeapGrowth polls — forcing a collection each round, since live-heap
// deltas are meaningless against uncollected garbage — until the live
// heap falls within allowed bytes of the baseline or the window
// expires. It returns the excess over baseline+allowed (0 when clean)
// and the final reading, mirroring Growth for goroutines: a bounded
// wind-down is absorbed, a real leak is reported.
func (m *Monitor) HeapGrowth(window time.Duration, allowed int64) (excess, final int64) {
	m.mu.Lock()
	base := m.heapBaseline
	m.mu.Unlock()
	deadline := time.Now().Add(window)
	for {
		n := settledHeap()
		if n <= base+allowed {
			return 0, n
		}
		if time.Now().After(deadline) {
			return n - (base + allowed), n
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// settledHeap returns the live heap after forcing a full collection:
// two GC cycles so finalizer-resurrected garbage from the first is
// collected by the second.
func settledHeap() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// FormatStacks renders goroutine records for a failure message.
func FormatStacks(gs []Goroutine) string {
	var b strings.Builder
	for _, g := range gs {
		fmt.Fprintf(&b, "%s\n\n", g.Stack)
	}
	return b.String()
}

// TB is the subset of testing.TB the Check helper needs; declared here
// so the package stays importable outside tests.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Check snapshots the module-owned goroutine count and registers a
// cleanup that fails the test if, after a drain window, more of them
// are alive than at the start. Call it before constructing the system
// under test so the cleanup runs after the system's own shutdown
// cleanup (Cleanup is LIFO).
func Check(t TB) {
	t.Helper()
	m := NewMonitor(Options{})
	m.Baseline()
	t.Cleanup(func() {
		if extra, stacks := m.Growth(5 * time.Second); extra > 0 {
			t.Errorf("goroutine leak: %d extra gspc goroutines alive:\n%s",
				extra, FormatStacks(stacks))
		}
	})
}
