package policy

import (
	"gspc/internal/cachesim"
	"gspc/internal/stream"
)

// Random victimizes a pseudo-random way. It is not evaluated in the paper
// but serves as a sanity baseline in tests and ablations: any learned
// policy should beat it on workloads with reuse. The generator is a
// deterministic xorshift so runs are reproducible.
type Random struct {
	ways int
	s    uint64
	seed uint64
}

var _ cachesim.Policy = (*Random)(nil)

// NewRandom returns a random-replacement policy with the given seed.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random{seed: seed}
}

// Name implements cachesim.Policy.
func (p *Random) Name() string { return "Random" }

// Reset implements cachesim.Policy.
func (p *Random) Reset(sets, ways int) {
	p.ways = ways
	p.s = p.seed
}

// Hit implements cachesim.Policy.
func (p *Random) Hit(set, way int, a stream.Access) {}

// Fill implements cachesim.Policy.
func (p *Random) Fill(set, way int, a stream.Access) {}

// Victim implements cachesim.Policy.
func (p *Random) Victim(set int, a stream.Access) int {
	p.s ^= p.s << 13
	p.s ^= p.s >> 7
	p.s ^= p.s << 17
	return int(p.s % uint64(p.ways))
}

// Evict implements cachesim.Policy.
func (p *Random) Evict(set, way int) {}
