package belady

import (
	"testing"
	"testing/quick"

	"gspc/internal/cachesim"
	"gspc/internal/policy"
	"gspc/internal/stream"
)

func mkTrace(blocks []int) []stream.Access {
	tr := make([]stream.Access, len(blocks))
	for i, b := range blocks {
		tr[i] = stream.Access{Addr: uint64(b) * 64, Seq: int64(i)}
	}
	return tr
}

func TestNextUseSimple(t *testing.T) {
	tr := mkTrace([]int{1, 2, 1, 3, 2, 1})
	next := NextUse(tr, 6)
	want := []int64{2, 4, 5, Never, Never, Never}
	for i := range want {
		if next[i] != want[i] {
			t.Errorf("next[%d] = %d, want %d", i, next[i], want[i])
		}
	}
}

func TestNextUseSameBlockDifferentOffsets(t *testing.T) {
	tr := []stream.Access{
		{Addr: 0, Seq: 0},
		{Addr: 63, Seq: 1}, // same block
		{Addr: 64, Seq: 2}, // next block
		{Addr: 32, Seq: 3}, // block 0 again
	}
	next := NextUse(tr, 6)
	if next[0] != 1 || next[1] != 3 || next[2] != Never || next[3] != Never {
		t.Errorf("next = %v", next)
	}
}

// brute-force next-use for the property test.
func bruteNextUse(tr []stream.Access, shift uint) []int64 {
	out := make([]int64, len(tr))
	for i := range tr {
		out[i] = Never
		for j := i + 1; j < len(tr); j++ {
			if tr[i].Addr>>shift == tr[j].Addr>>shift {
				out[i] = int64(j)
				break
			}
		}
	}
	return out
}

func TestNextUseProperty(t *testing.T) {
	f := func(blocks []uint8) bool {
		tr := make([]stream.Access, len(blocks))
		for i, b := range blocks {
			tr[i] = stream.Access{Addr: uint64(b) * 8, Seq: int64(i)}
		}
		got := NextUse(tr, 6)
		want := bruteNextUse(tr, 6)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func runTrace(tr []stream.Access, p cachesim.Policy, ways int) int64 {
	c := cachesim.New(cachesim.Geometry{SizeBytes: 64 * ways, Ways: ways, BlockSize: 64}, p)
	for _, a := range tr {
		c.Access(a)
	}
	return c.Stats.Misses
}

func TestOPTKnownSequence(t *testing.T) {
	// 2-way cache, blocks: 1 2 3 1 2. OPT: on filling 3, evict 2 if 1 is
	// nearer... next uses: 1->3, 2->4, 3->never. Filling 3 with bypass
	// enabled: 3 is never reused, so OPT bypasses it entirely.
	tr := mkTrace([]int{1, 2, 3, 1, 2})
	misses := runTrace(tr, NewOPT(NextUse(tr, 6)), 2)
	if misses != 3 {
		t.Errorf("OPT misses = %d, want 3 (fills 1,2; bypasses 3; hits 1,2)", misses)
	}
}

func TestOPTForcedFill(t *testing.T) {
	tr := mkTrace([]int{1, 2, 3, 1, 2})
	p := NewOPT(NextUse(tr, 6))
	p.Bypass = false
	misses := runTrace(tr, p, 2)
	// Forced fill must evict one of {1,2} for 3; evicting the farther (2)
	// preserves the hit on 1: misses = 1,2,3,2 = 4.
	if misses != 4 {
		t.Errorf("forced-fill OPT misses = %d, want 4", misses)
	}
}

func TestOPTBeatsLRUOnLoop(t *testing.T) {
	// Cyclic access to ways+1 blocks is LRU's worst case; OPT keeps all
	// but one resident.
	var blocks []int
	for rep := 0; rep < 10; rep++ {
		for b := 0; b < 5; b++ {
			blocks = append(blocks, b)
		}
	}
	tr := mkTrace(blocks)
	lru := runTrace(tr, policy.NewLRU(), 4)
	opt := runTrace(tr, NewOPT(NextUse(tr, 6)), 4)
	if lru != int64(len(tr)) {
		t.Errorf("LRU on a 5-block loop in 4 ways should always miss, got %d/%d", lru, len(tr))
	}
	if opt >= lru/2 {
		t.Errorf("OPT (%d) should dramatically beat LRU (%d)", opt, lru)
	}
}

// The defining property: OPT's miss count lower-bounds every on-line
// policy on the same trace and geometry.
func TestOPTOptimalityProperty(t *testing.T) {
	rivals := func() []cachesim.Policy {
		return []cachesim.Policy{
			policy.NewLRU(), policy.NewNRU(), policy.NewSRRIP(2),
			policy.NewDRRIP(2), policy.NewRandom(11),
		}
	}
	f := func(blocks []uint8) bool {
		if len(blocks) == 0 {
			return true
		}
		tr := make([]stream.Access, len(blocks))
		for i, b := range blocks {
			tr[i] = stream.Access{Addr: uint64(b%32) * 64, Seq: int64(i)}
		}
		opt := runTrace(tr, NewOPT(NextUse(tr, 6)), 4)
		for _, r := range rivals() {
			if opt > runTrace(tr, r, 4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Bypass-capable OPT never does worse than forced-fill OPT.
func TestOPTBypassNeverWorseProperty(t *testing.T) {
	f := func(blocks []uint8) bool {
		if len(blocks) == 0 {
			return true
		}
		tr := make([]stream.Access, len(blocks))
		for i, b := range blocks {
			tr[i] = stream.Access{Addr: uint64(b%16) * 64, Seq: int64(i)}
		}
		next := NextUse(tr, 6)
		withBypass := runTrace(tr, NewOPT(next), 4)
		forced := NewOPT(next)
		forced.Bypass = false
		return withBypass <= runTrace(tr, forced, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOPTPanicsOnUnpreparedSeq(t *testing.T) {
	tr := mkTrace([]int{1, 2})
	p := NewOPT(NextUse(tr, 6))
	c := cachesim.New(cachesim.Geometry{SizeBytes: 128, Ways: 2, BlockSize: 64}, p)
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range Seq")
		}
	}()
	c.Access(stream.Access{Addr: 0, Seq: 99})
}

func TestOPTName(t *testing.T) {
	if NewOPT(nil).Name() != "Belady" {
		t.Error("unexpected policy name")
	}
}
